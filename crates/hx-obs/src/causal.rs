//! Deterministic causal tracing: flow IDs across asynchronous handoffs.
//!
//! A **flow** connects the two ends of one asynchronous handoff in the
//! machine — a device raising an interrupt line and the guest entering the
//! ISR, an IPI send on one core and its delivery on another, a disk command
//! doorbell and the completion interrupt, a guest tracepoint `begin` and its
//! matching `end`. Each completed flow carries a monotonically assigned ID,
//! both endpoints' cycles and cores, and feeds a per-class end-to-end
//! latency histogram.
//!
//! Everything here is a pure function of the simulated run: flow IDs are
//! assigned in hook-call order, timestamps are simulated cycles, and no
//! collection iterates in nondeterministic order — so two identical runs
//! (or a recording and its replay) produce byte-identical flow exports.
//! The tracker is plain data and clones with the recorder, which is what
//! lets flight-recorder time travel rewind causal state along with the
//! machine.
//!
//! ## Flow classes and their assignment rules
//!
//! | class | begins at | ends at | key |
//! |---|---|---|---|
//! | `irq-dispatch` | device asserts a PIC line | guest ISR entry (INTA) | IRQ line |
//! | `irq-service` | guest ISR entry | guest EOI write | IRQ line (LIFO) |
//! | `ipi` | IPI send MMIO write | delivery on the target core | target·line |
//! | `disk` | disk `CMD` doorbell | completion IRQ assert | IRQ line of the unit |
//! | `nic-tx` | NIC `TX_TAIL` doorbell | TX-done IRQ assert (drains all) | — |
//! | `span` | guest `TRACE` begin | guest `TRACE` end (LIFO per id) | tracepoint id |
//!
//! Re-assertion of an already-pending IRQ line keeps the *earliest* raise
//! (dispatch latency is measured from the first assertion); a TX-done
//! interrupt completes *every* pending `nic-tx` flow, because interrupt
//! moderation deliberately coalesces completions. Ends without a matching
//! begin (an EOI with an empty service stack, a span `end` with no `begin`)
//! are counted as orphans, never recorded as flows.

use crate::event::Dev;
use crate::hist::CycleHist;

/// IRQ-line and register constants mirrored from the machine's memory map.
/// `hx-obs` sits below `hx-machine` in the crate graph, so it cannot import
/// `hx_machine::map` — but the line assignments are part of the frozen
/// platform contract (guest kernels hard-code them too), so mirroring them
/// here is mirroring an ABI, not duplicating a tunable.
mod contract {
    /// First disk unit's completion line (`map::irq::HDC0`).
    pub const HDC0_LINE: u32 = 2;
    /// NIC transmit-completion line (`map::irq::NIC_TX`).
    pub const NIC_TX_LINE: u32 = 5;
    /// NIC TX doorbell register offset (`nic::reg::TX_TAIL`).
    pub const NIC_TX_TAIL: u32 = 0x0c;
    /// Byte stride between disk-unit register blocks.
    pub const HDC_UNIT_STRIDE: u32 = 0x40;
}

/// The kind of asynchronous handoff a flow spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    /// Device IRQ assert → guest ISR entry.
    IrqDispatch,
    /// Guest ISR entry → guest EOI write.
    IrqService,
    /// IPI send → delivery on the target core.
    Ipi,
    /// Disk command doorbell → completion IRQ assert.
    Disk,
    /// NIC TX doorbell → TX-done IRQ assert.
    NicTx,
    /// Guest tracepoint begin → end.
    Span,
}

impl FlowClass {
    pub const ALL: [FlowClass; 6] = [
        FlowClass::IrqDispatch,
        FlowClass::IrqService,
        FlowClass::Ipi,
        FlowClass::Disk,
        FlowClass::NicTx,
        FlowClass::Span,
    ];

    pub const COUNT: usize = Self::ALL.len();

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).unwrap()
    }

    pub fn label(self) -> &'static str {
        match self {
            FlowClass::IrqDispatch => "irq-dispatch",
            FlowClass::IrqService => "irq-service",
            FlowClass::Ipi => "ipi",
            FlowClass::Disk => "disk",
            FlowClass::NicTx => "nic-tx",
            FlowClass::Span => "span",
        }
    }
}

/// A guest tracepoint operation (the three registers of the `TRACE` page).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Opens a span for the written id.
    Begin,
    /// Closes the most recent open span with the written id.
    End,
    /// A point event; never opens or closes a flow.
    Instant,
}

impl TraceOp {
    /// One-character journal code.
    pub fn code(self) -> &'static str {
        match self {
            TraceOp::Begin => "b",
            TraceOp::End => "e",
            TraceOp::Instant => "i",
        }
    }

    pub fn parse(s: &str) -> Option<TraceOp> {
        match s {
            "b" => Some(TraceOp::Begin),
            "e" => Some(TraceOp::End),
            "i" => Some(TraceOp::Instant),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            TraceOp::Begin => "begin",
            TraceOp::End => "end",
            TraceOp::Instant => "instant",
        }
    }
}

/// One completed flow: both endpoints of a single asynchronous handoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Monotonic id, assigned at the flow's *begin* in hook-call order.
    pub id: u64,
    pub class: FlowClass,
    /// Class-specific key: IRQ line, `target<<8|line` for IPIs, tracepoint
    /// id for spans, 0 for `nic-tx`.
    pub key: u32,
    /// Simulated cycle of the begin endpoint.
    pub begin: u64,
    /// Simulated cycle of the end endpoint (`>= begin`).
    pub end: u64,
    /// Core the begin endpoint was observed on.
    pub begin_core: u8,
    /// Core the end endpoint was observed on.
    pub end_core: u8,
}

impl Flow {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.begin
    }
}

/// A begin endpoint waiting for its end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    id: u64,
    at: u64,
    core: u8,
}

/// The causal tracker: pending begin endpoints, completed flows, and
/// per-class latency histograms. One per [`crate::Recorder`], enabled
/// explicitly; every hook is a no-op branch when disabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalTracker {
    next_id: u64,
    flows: Vec<Flow>,
    /// Completed flows beyond [`CausalTracker::MAX_FLOWS`] (histograms
    /// still record them; only the per-flow record is dropped).
    dropped_flows: u64,
    /// Ends that arrived with no matching begin, out of order (before
    /// their begin), or with an unpackable IPI key.
    orphan_ends: u64,
    /// Begins evicted because a pending set hit its cap.
    dropped_pending: u64,
    /// Instant tracepoints observed (never flows).
    instants: u64,
    hists: [CycleHist; FlowClass::COUNT],
    /// Pending IRQ raises, keyed by line; at most one per line (the
    /// earliest assertion wins).
    irq_pending: Vec<(u32, Pending)>,
    /// In-service IRQs, a LIFO stack: EOI closes the most recent entry.
    service: Vec<(u32, Pending)>,
    /// In-flight IPIs, FIFO per `target<<8|line` key.
    ipi_pending: Vec<(u32, Pending)>,
    /// In-flight disk commands, FIFO per completion-line key.
    disk_pending: Vec<(u32, Pending)>,
    /// In-flight TX doorbells; a TX-done interrupt drains all of them.
    nic_tx_pending: Vec<Pending>,
    /// Open tracepoint spans; `end` closes the most recent with its id.
    span_pending: Vec<(u32, Pending)>,
}

impl CausalTracker {
    /// Completed-flow records kept; beyond this, histograms keep counting
    /// but per-flow records are dropped (and counted).
    pub const MAX_FLOWS: usize = 65_536;
    /// Cap on each pending set; the oldest entry is evicted past it.
    const MAX_PENDING: usize = 1_024;

    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, at: u64, core: u8) -> Pending {
        let id = self.next_id;
        self.next_id += 1;
        Pending { id, at, core }
    }

    fn finish(&mut self, class: FlowClass, key: u32, p: Pending, at: u64, core: u8) {
        // An end landing *before* its begin can only come from a
        // non-monotonic caller; clamping it to a 0-cycle latency would
        // silently poison the histograms (and `Flow::latency`'s `end >=
        // begin` contract), so the pairing is discarded and counted as an
        // orphan instead.
        if at < p.at {
            self.orphan_ends += 1;
            return;
        }
        self.hists[class.index()].record(at - p.at);
        if self.flows.len() < Self::MAX_FLOWS {
            self.flows.push(Flow {
                id: p.id,
                class,
                key,
                begin: p.at,
                end: at,
                begin_core: p.core,
                end_core: core,
            });
        } else {
            self.dropped_flows += 1;
        }
    }

    fn push_pending(vec: &mut Vec<(u32, Pending)>, key: u32, p: Pending, dropped: &mut u64) {
        if vec.len() >= Self::MAX_PENDING {
            vec.remove(0);
            *dropped += 1;
        }
        vec.push((key, p));
    }

    /// A device asserted IRQ line `irq`: ends any disk/NIC command flow the
    /// assertion completes, then opens an `irq-dispatch` flow for the line
    /// (unless one is already pending — the earliest raise wins).
    pub fn device_irq(&mut self, at: u64, core: u8, dev: Dev, irq: u32) {
        match dev {
            // PIC "raises" are IPI deliveries or injected bursts; IPIs are
            // tracked by their own hooks and bursts have no device cause.
            Dev::Pic => return,
            Dev::Hdc => {
                if let Some(i) = self.disk_pending.iter().position(|(k, _)| *k == irq) {
                    let (key, p) = self.disk_pending.remove(i);
                    self.finish(FlowClass::Disk, key, p, at, core);
                }
            }
            Dev::Nic if irq == contract::NIC_TX_LINE => {
                // Interrupt moderation coalesces completions: one TX-done
                // interrupt retires every in-flight TX doorbell.
                for p in std::mem::take(&mut self.nic_tx_pending) {
                    self.finish(FlowClass::NicTx, 0, p, at, core);
                }
            }
            _ => {}
        }
        if !self.irq_pending.iter().any(|(k, _)| *k == irq) {
            let p = self.begin(at, core);
            Self::push_pending(&mut self.irq_pending, irq, p, &mut self.dropped_pending);
        }
    }

    /// The guest rang a device doorbell: disk `CMD` writes open a `disk`
    /// flow keyed by the unit's completion line, NIC `TX_TAIL` writes open
    /// a `nic-tx` flow. Other doorbells carry no tracked handoff.
    pub fn doorbell(&mut self, at: u64, core: u8, dev: Dev, reg: u32) {
        match dev {
            Dev::Hdc => {
                let key = contract::HDC0_LINE + reg / contract::HDC_UNIT_STRIDE;
                let p = self.begin(at, core);
                Self::push_pending(&mut self.disk_pending, key, p, &mut self.dropped_pending);
            }
            Dev::Nic if reg == contract::NIC_TX_TAIL => {
                if self.nic_tx_pending.len() >= Self::MAX_PENDING {
                    self.nic_tx_pending.remove(0);
                    self.dropped_pending += 1;
                }
                let p = self.begin(at, core);
                self.nic_tx_pending.push(p);
            }
            _ => {}
        }
    }

    /// The guest entered the ISR for line `irq` (architectural INTA on raw
    /// hardware, virtual-PIC INTA at injection under a monitor): completes
    /// the line's `irq-dispatch` flow and opens its `irq-service` flow.
    pub fn inta(&mut self, at: u64, core: u8, irq: u32) {
        if let Some(i) = self.irq_pending.iter().position(|(k, _)| *k == irq) {
            let (key, p) = self.irq_pending.remove(i);
            self.finish(FlowClass::IrqDispatch, key, p, at, core);
        }
        let p = self.begin(at, core);
        Self::push_pending(&mut self.service, irq, p, &mut self.dropped_pending);
    }

    /// The guest wrote the PIC EOI register: completes the most recent
    /// `irq-service` flow (ISRs nest LIFO, like the profiler assumes).
    pub fn eoi(&mut self, at: u64, core: u8) {
        match self.service.pop() {
            Some((key, p)) => self.finish(FlowClass::IrqService, key, p, at, core),
            None => self.orphan_ends += 1,
        }
    }

    /// Packs an IPI `(target, line)` pair into a flow key. The key layout
    /// is `target << 8 | line`, so `line` must fit in 8 bits — a wider
    /// value would silently alias another pair's key and cross-match
    /// unrelated sends and deliveries. Out-of-range lines are rejected
    /// (`None`); release builds degrade gracefully while debug builds trap
    /// the programming error at the source.
    fn ipi_key(target: u8, line: u32) -> Option<u32> {
        if line > 0xff {
            debug_assert!(false, "IPI line {line} does not fit the 8-bit key field");
            return None;
        }
        Some(((target as u32) << 8) | line)
    }

    /// An IPI send was issued toward `target`, line `line`. A line that
    /// cannot be packed into the key is counted as a dropped begin rather
    /// than aliased onto another `(target, line)` pair.
    pub fn ipi_send(&mut self, at: u64, core: u8, target: u8, line: u32) {
        let Some(key) = Self::ipi_key(target, line) else {
            self.dropped_pending += 1;
            return;
        };
        let p = self.begin(at, core);
        Self::push_pending(&mut self.ipi_pending, key, p, &mut self.dropped_pending);
    }

    /// An IPI was delivered to `target` (startup or pending-mask latch):
    /// completes the oldest in-flight send with the same target and line.
    /// An unpackable line is counted as an orphan end.
    pub fn ipi_deliver(&mut self, at: u64, target: u8, line: u32) {
        let Some(key) = Self::ipi_key(target, line) else {
            self.orphan_ends += 1;
            return;
        };
        match self.ipi_pending.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                let (key, p) = self.ipi_pending.remove(i);
                self.finish(FlowClass::Ipi, key, p, at, target);
            }
            None => self.orphan_ends += 1,
        }
    }

    /// The guest wrote a `TRACE`-page register: `begin` opens a span for
    /// `id`, `end` closes the most recent open span with that id, and
    /// `instant` is counted but never opens a flow.
    pub fn tracepoint(&mut self, at: u64, core: u8, op: TraceOp, id: u32) {
        match op {
            TraceOp::Begin => {
                let p = self.begin(at, core);
                Self::push_pending(&mut self.span_pending, id, p, &mut self.dropped_pending);
            }
            TraceOp::End => match self.span_pending.iter().rposition(|(k, _)| *k == id) {
                Some(i) => {
                    let (key, p) = self.span_pending.remove(i);
                    self.finish(FlowClass::Span, key, p, at, core);
                }
                None => self.orphan_ends += 1,
            },
            TraceOp::Instant => self.instants += 1,
        }
    }

    /// Completed flows, in completion order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Latency histogram for one flow class.
    pub fn hist(&self, class: FlowClass) -> &CycleHist {
        &self.hists[class.index()]
    }

    /// Total completed flows across all classes (histogram counts include
    /// flows whose records were dropped past [`CausalTracker::MAX_FLOWS`]).
    pub fn completed(&self) -> u64 {
        self.hists.iter().map(|h| h.count()).sum()
    }

    pub fn dropped_flows(&self) -> u64 {
        self.dropped_flows
    }

    pub fn orphan_ends(&self) -> u64 {
        self.orphan_ends
    }

    /// Begins evicted by a full pending set or rejected outright (e.g. an
    /// IPI line that does not fit the key field).
    pub fn dropped_pending(&self) -> u64 {
        self.dropped_pending
    }

    pub fn instants(&self) -> u64 {
        self.instants
    }

    /// The causal chain ending at `flow`: walks begin→end adjacency
    /// backwards, collecting every flow whose end coincides (same cycle)
    /// with the current flow's begin — e.g. a disk completion IRQ assert
    /// ends the `disk` flow at the exact cycle the `irq-dispatch` flow
    /// begins. Returns the chain oldest-first, `flow` last.
    pub fn chain_to(&self, flow: &Flow) -> Vec<Flow> {
        let mut chain = vec![*flow];
        let mut cursor = *flow;
        // Bounded by the chain length; each step moves strictly back in time
        // or stops.
        while let Some(prev) = self
            .flows
            .iter()
            .find(|f| f.end == cursor.begin && f.id != cursor.id && f.begin <= cursor.begin)
        {
            if chain.iter().any(|c| c.id == prev.id) {
                break;
            }
            chain.push(*prev);
            cursor = *prev;
        }
        chain.reverse();
        chain
    }

    /// The last flow whose end is at or before `cycle` (what `dbgctl flow
    /// --at` anchors its chain on).
    pub fn flow_ending_by(&self, cycle: u64) -> Option<&Flow> {
        self.flows
            .iter()
            .filter(|f| f.end <= cycle)
            .max_by_key(|f| (f.end, f.id))
    }

    /// One-line text summary per non-empty class (the `lwvmm-run --causal`
    /// report body).
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for class in FlowClass::ALL {
            let h = self.hist(class);
            if h.count() == 0 {
                continue;
            }
            out.push(format!(
                "{:<12} n={:<6} min={:<6} p50={:<6} p99={:<8} max={:<8} mean={}",
                class.label(),
                h.count(),
                h.min(),
                h.p50(),
                h.p99(),
                h.max(),
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irq_raise_to_inta_to_eoi_makes_two_chained_flows() {
        let mut c = CausalTracker::new();
        c.device_irq(100, 0, Dev::Pit, 0);
        c.device_irq(110, 0, Dev::Pit, 0); // re-assert: earliest raise wins
        c.inta(150, 0, 0);
        c.eoi(200, 0);
        let flows = c.flows();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].class, FlowClass::IrqDispatch);
        assert_eq!((flows[0].begin, flows[0].end), (100, 150));
        assert_eq!(flows[1].class, FlowClass::IrqService);
        assert_eq!((flows[1].begin, flows[1].end), (150, 200));
        assert_eq!(c.hist(FlowClass::IrqDispatch).max(), 50);
        assert_eq!(c.hist(FlowClass::IrqService).max(), 50);
        assert_eq!(c.orphan_ends(), 0);
        // The chain from the service flow walks back through the dispatch.
        let chain = c.chain_to(&flows[1]);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].class, FlowClass::IrqDispatch);
    }

    #[test]
    fn disk_command_chains_into_its_completion_irq() {
        let mut c = CausalTracker::new();
        c.doorbell(1_000, 0, Dev::Hdc, 0x4c); // unit 1 CMD
        c.device_irq(9_000, 0, Dev::Hdc, 3); // unit 1 completion line
        c.inta(9_040, 0, 3);
        let flows = c.flows();
        assert_eq!(flows[0].class, FlowClass::Disk);
        assert_eq!(flows[0].key, 3);
        assert_eq!(flows[0].latency(), 8_000);
        assert_eq!(flows[1].class, FlowClass::IrqDispatch);
        // disk.end == irq-dispatch.begin: the chain links them.
        let chain = c.chain_to(&flows[1]);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].class, FlowClass::Disk);
    }

    #[test]
    fn tx_done_drains_all_moderated_doorbells() {
        let mut c = CausalTracker::new();
        c.doorbell(10, 0, Dev::Nic, 0x0c);
        c.doorbell(20, 0, Dev::Nic, 0x0c);
        c.doorbell(30, 0, Dev::Nic, 0x2c); // RX_TAIL: not a TX flow
        c.device_irq(90, 0, Dev::Nic, 5);
        let tx: Vec<_> = c
            .flows()
            .iter()
            .filter(|f| f.class == FlowClass::NicTx)
            .collect();
        assert_eq!(tx.len(), 2);
        assert!(tx.iter().all(|f| f.end == 90));
    }

    #[test]
    fn ipi_send_completes_on_target_core() {
        let mut c = CausalTracker::new();
        c.ipi_send(500, 0, 1, 0);
        c.ipi_deliver(564, 1, 0);
        let f = c.flows()[0];
        assert_eq!(f.class, FlowClass::Ipi);
        assert_eq!((f.begin_core, f.end_core), (0, 1));
        assert_eq!(f.latency(), 64);
        // Unmatched delivery is an orphan, not a flow.
        c.ipi_deliver(600, 1, 3);
        assert_eq!(c.orphan_ends(), 1);
    }

    #[test]
    fn out_of_order_end_is_an_orphan_not_a_zero_latency() {
        let mut c = CausalTracker::new();
        c.device_irq(100, 0, Dev::Pit, 5);
        // The INTA claims to happen *before* the raise. The old code
        // clamped this to a 0-cycle latency; it must instead be counted
        // and kept out of the histograms entirely.
        c.inta(40, 0, 5);
        assert_eq!(c.hist(FlowClass::IrqDispatch).count(), 0);
        assert_eq!(c.orphan_ends(), 1);
        assert!(c.flows().is_empty());
        // The service flow the INTA opened still pairs normally.
        c.eoi(90, 0);
        assert_eq!(c.hist(FlowClass::IrqService).count(), 1);
        assert_eq!(c.hist(FlowClass::IrqService).min(), 50);
        // The reconciliation invariant survives the rejection.
        assert_eq!(c.completed(), c.flows().len() as u64 + c.dropped_flows());
    }

    #[test]
    fn ipi_key_packs_target_and_line() {
        assert_eq!(CausalTracker::ipi_key(2, 0xff), Some(0x2ff));
        assert_eq!(CausalTracker::ipi_key(0, 0), Some(0));
        assert_eq!(CausalTracker::ipi_key(3, 7), Some(0x307));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "8-bit key field"))]
    fn ipi_line_out_of_range_is_rejected_not_aliased() {
        let mut c = CausalTracker::new();
        // Unchecked packing would turn (1, 0x200) into key 0x300 — the
        // same key as (3, 0). Debug builds trap the bad line at the send;
        // release builds drop it and never cross-match the (3, 0) deliver.
        c.ipi_send(10, 0, 1, 0x200);
        assert_eq!(c.dropped_pending(), 1);
        c.ipi_deliver(20, 3, 0);
        assert!(c.flows().is_empty());
        assert_eq!(c.hist(FlowClass::Ipi).count(), 0);
        assert_eq!(c.orphan_ends(), 1);
        // An out-of-range line on the deliver side is an orphan too.
        c.ipi_deliver(30, 1, 0x200);
        assert_eq!(c.orphan_ends(), 2);
    }

    #[test]
    fn spans_nest_lifo_per_id_and_instants_never_flow() {
        let mut c = CausalTracker::new();
        c.tracepoint(10, 0, TraceOp::Begin, 7);
        c.tracepoint(20, 0, TraceOp::Begin, 7);
        c.tracepoint(25, 0, TraceOp::Instant, 9);
        c.tracepoint(30, 1, TraceOp::End, 7); // closes the 20-begin
        c.tracepoint(40, 0, TraceOp::End, 7); // closes the 10-begin
        c.tracepoint(50, 0, TraceOp::End, 7); // orphan
        let spans: Vec<_> = c
            .flows()
            .iter()
            .filter(|f| f.class == FlowClass::Span)
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            (spans[0].begin, spans[0].end, spans[0].end_core),
            (20, 30, 1)
        );
        assert_eq!((spans[1].begin, spans[1].end), (10, 40));
        assert_eq!(c.instants(), 1);
        assert_eq!(c.orphan_ends(), 1);
    }

    #[test]
    fn flow_ending_by_anchors_on_the_latest_completed_flow() {
        let mut c = CausalTracker::new();
        c.device_irq(100, 0, Dev::Pit, 0);
        c.inta(150, 0, 0);
        c.eoi(220, 0);
        assert!(c.flow_ending_by(99).is_none());
        assert_eq!(c.flow_ending_by(150).unwrap().class, FlowClass::IrqDispatch);
        assert_eq!(
            c.flow_ending_by(10_000).unwrap().class,
            FlowClass::IrqService
        );
    }

    #[test]
    fn summary_lists_only_non_empty_classes() {
        let mut c = CausalTracker::new();
        assert!(c.summary_lines().is_empty());
        c.device_irq(100, 0, Dev::Pit, 0);
        c.inta(150, 0, 0);
        let lines = c.summary_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("irq-dispatch"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One hook call, with a cycle delta so timestamps never decrease.
        #[derive(Clone, Debug)]
        enum Call {
            Irq { dev: Dev, irq: u32 },
            Bell { dev: Dev, reg: u32 },
            Inta { irq: u32 },
            Eoi,
            IpiSend { target: u8, line: u32 },
            IpiDeliver { target: u8, line: u32 },
            Trace { op: TraceOp, id: u32 },
        }

        fn arb_call() -> impl Strategy<Value = Call> {
            let dev =
                || proptest::sample::select(&[Dev::Nic, Dev::Hdc, Dev::Pit, Dev::Uart, Dev::Pic]);
            let op = proptest::sample::select(&[TraceOp::Begin, TraceOp::End, TraceOp::Instant]);
            prop_oneof![
                (dev(), 0u32..8).prop_map(|(dev, irq)| Call::Irq { dev, irq }),
                (dev(), 0u32..0x100).prop_map(|(dev, reg)| Call::Bell { dev, reg }),
                (0u32..8).prop_map(|irq| Call::Inta { irq }),
                Just(Call::Eoi),
                (0u8..4, 0u32..8).prop_map(|(target, line)| Call::IpiSend { target, line }),
                (0u8..4, 0u32..8).prop_map(|(target, line)| Call::IpiDeliver { target, line }),
                (op, 0u32..16).prop_map(|(op, id)| Call::Trace { op, id }),
            ]
        }

        proptest! {
            // Every emitted flow is well-formed: begin <= end, unique ids,
            // and the histogram counts reconcile with the flow records.
            #[test]
            fn flows_are_well_formed(
                calls in proptest::collection::vec((arb_call(), 0u64..100, 0u8..4), 0..200),
            ) {
                let mut c = CausalTracker::new();
                let mut now = 0u64;
                for (call, dt, core) in calls {
                    now += dt;
                    match call {
                        Call::Irq { dev, irq } => c.device_irq(now, core, dev, irq),
                        Call::Bell { dev, reg } => c.doorbell(now, core, dev, reg),
                        Call::Inta { irq } => c.inta(now, core, irq),
                        Call::Eoi => c.eoi(now, core),
                        Call::IpiSend { target, line } => c.ipi_send(now, core, target, line),
                        Call::IpiDeliver { target, line } => c.ipi_deliver(now, target, line),
                        Call::Trace { op, id } => c.tracepoint(now, core, op, id),
                    }
                }
                let mut seen = std::collections::HashSet::new();
                for f in c.flows() {
                    prop_assert!(f.begin <= f.end, "flow {f:?} ends before it begins");
                    prop_assert!(seen.insert(f.id), "duplicate flow id {}", f.id);
                    prop_assert!(f.latency() == f.end - f.begin);
                }
                prop_assert_eq!(
                    c.completed(),
                    c.flows().len() as u64 + c.dropped_flows()
                );
                // Determinism: rebuilding from the same calls is identical.
                // (Cheap to assert here because the tracker is PartialEq.)
                prop_assert_eq!(&c, &c.clone());
            }
        }
    }
}
