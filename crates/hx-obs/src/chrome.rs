//! Chrome trace-event JSON (Perfetto-compatible) exporter.
//!
//! Produces the "JSON array format" understood by `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev). Each platform becomes one
//! process (`pid`); its four time buckets become threads carrying `ph:"X"`
//! duration spans, and a fifth thread carries `ph:"i"` instant events
//! (IRQs, DMA, doorbells, debug commands, VM exits).
//!
//! Timestamps: the `ts`/`dur` fields are **simulated cycles** written as
//! integer microseconds (1 cycle ≙ 1 µs of display time). Since the
//! simulation is deterministic and the exporter iterates plain vectors in
//! insertion order with integer-only formatting, the emitted bytes are a
//! pure function of the run — byte-identical traces across identical runs
//! are a tested invariant.

use crate::event::{Dev, EventKind};
use crate::recorder::Recorder;
use crate::span::Track;

/// Thread id carrying instant events, after the four track threads.
const EVENTS_TID: u32 = 4;
/// First device thread id; device `d` gets tid `DEV_TID_BASE + d.index()`.
const DEV_TID_BASE: u32 = 5;
/// First per-core thread id; core `n` gets tid `CORE_TID_BASE + n`.
const CORE_TID_BASE: u32 = 16;

#[derive(Default)]
pub struct ChromeTrace {
    lines: Vec<String>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    fn meta(&mut self, pid: u32, tid: u32, what: &str, name: &str) {
        self.lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(what),
            esc(name)
        ));
    }

    /// Add one platform's recorded run as process `pid` named `name`.
    pub fn add_platform(&mut self, pid: u32, name: &str, rec: &Recorder) {
        self.meta(pid, 0, "process_name", name);
        for t in Track::ALL {
            self.meta(pid, t.index() as u32, "thread_name", t.label());
        }
        self.meta(pid, EVENTS_TID, "thread_name", "events");
        // Label the per-device tracks so Perfetto shows device names
        // instead of raw tids.
        for d in Dev::ALL {
            self.meta(
                pid,
                DEV_TID_BASE + d.index() as u32,
                "thread_name",
                &format!("dev:{}", d.label()),
            );
        }
        // Per-core tracks carry flow endpoints and tracepoint spans. The
        // core count is derived from recorded data (deterministic): the
        // per-core exit table plus any core named by a completed flow.
        let mut cores = rec.core_exit_counts().len().max(1);
        if let Some(c) = rec.causal() {
            for f in c.flows() {
                cores = cores
                    .max(f.begin_core as usize + 1)
                    .max(f.end_core as usize + 1);
            }
        }
        for n in 0..cores {
            self.meta(
                pid,
                CORE_TID_BASE + n as u32,
                "thread_name",
                &format!("core{n}"),
            );
        }

        for s in rec.spans.spans() {
            self.lines.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"name\":\"{}\",\
                 \"cat\":\"cpu\",\"ts\":{},\"dur\":{}}}",
                s.track.index(),
                esc(s.track.label()),
                s.start,
                s.len()
            ));
        }

        for ev in rec.ring.iter() {
            // Device events land on their device's labeled track; everything
            // else stays on the shared events track.
            let tid = match ev.kind {
                EventKind::DeviceIrq { dev, .. }
                | EventKind::DeviceDma { dev, .. }
                | EventKind::Doorbell { dev, .. } => DEV_TID_BASE + dev.index() as u32,
                _ => EVENTS_TID,
            };
            let args = match ev.kind {
                EventKind::VmExit { cause, cycles } => {
                    format!("\"cause\":\"{}\",\"cycles\":{}", esc(cause.label()), cycles)
                }
                EventKind::ShadowFault { vaddr } => format!("\"vaddr\":{vaddr}"),
                EventKind::DeviceIrq { dev, irq } => {
                    format!("\"dev\":\"{}\",\"irq\":{}", esc(dev.label()), irq)
                }
                EventKind::DeviceDma { dev, bytes } => {
                    format!("\"dev\":\"{}\",\"bytes\":{}", esc(dev.label()), bytes)
                }
                EventKind::Doorbell { dev, reg } => {
                    format!("\"dev\":\"{}\",\"reg\":{}", esc(dev.label()), reg)
                }
                EventKind::DebugCommand { code } => {
                    format!("\"code\":{}", code)
                }
                EventKind::GuestSample { bytes, frames } => {
                    format!("\"bytes\":{bytes},\"frames\":{frames}")
                }
                EventKind::FaultInjected { code, arg } => {
                    format!("\"code\":{code},\"arg\":{arg}")
                }
                EventKind::Logpoint { addr, value } => {
                    format!("\"addr\":{addr},\"value\":{value}")
                }
                EventKind::IrqEntry { irq } => format!("\"irq\":{irq}"),
                EventKind::IrqEoi => String::new(),
                EventKind::Tracepoint { op, id } => {
                    format!("\"op\":\"{}\",\"id\":{}", esc(op.label()), id)
                }
            };
            self.lines.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
                 \"s\":\"t\",\"ts\":{},\"args\":{{{args}}}}}",
                esc(ev.kind.name()),
                ev.at
            ));
        }

        self.add_flows(pid, rec);

        // Truncation is data, not a footnote: surface drop counts in-band.
        let flows_dropped = rec.causal().map_or(0, |c| c.dropped_flows());
        if rec.ring.dropped() > 0 || rec.spans.dropped() > 0 || flows_dropped > 0 {
            self.lines.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{EVENTS_TID},\"name\":\"truncated\",\
                 \"s\":\"p\",\"ts\":{},\"args\":{{\"events_dropped\":{},\"spans_dropped\":{},\
                 \"flows_dropped\":{flows_dropped}}}}}",
                rec.spans.cursor(),
                rec.ring.dropped(),
                rec.spans.dropped()
            ));
        }
    }

    /// Causal flows as Chrome flow events: each completed flow becomes a
    /// `ph:"s"` start on its begin core's track and a `ph:"f"` finish on
    /// its end core's track, bound by a shared id (made unique across
    /// processes by folding in `pid`). Guest tracepoint spans additionally
    /// render as `ph:"X"` duration slices on the emitting core's track.
    fn add_flows(&mut self, pid: u32, rec: &Recorder) {
        let Some(causal) = rec.causal() else {
            return;
        };
        for f in causal.flows() {
            let flow_id = ((pid as u64) << 32) | f.id;
            let name = esc(f.class.label());
            self.lines.push(format!(
                "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":{},\"name\":\"{name}\",\
                 \"cat\":\"flow\",\"id\":{flow_id},\"ts\":{},\"args\":{{\"key\":{}}}}}",
                CORE_TID_BASE + f.begin_core as u32,
                f.begin,
                f.key
            ));
            self.lines.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":{},\"name\":\"{name}\",\
                 \"cat\":\"flow\",\"id\":{flow_id},\"ts\":{}}}",
                CORE_TID_BASE + f.end_core as u32,
                f.end
            ));
            if f.class == crate::causal::FlowClass::Span {
                self.lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"name\":\"span:{}\",\
                     \"cat\":\"trace\",\"ts\":{},\"dur\":{}}}",
                    CORE_TID_BASE + f.begin_core as u32,
                    f.key,
                    f.begin,
                    f.latency()
                ));
            }
        }
    }

    /// Final JSON document.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dev, ExitCause};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.enable_tracing();
        r.charge(Track::Guest, 100);
        r.exit(100, ExitCause::Mmio, 990);
        r.charge(Track::Monitor, 990);
        r.irq(1090, Dev::Nic, 5);
        r.charge(Track::Idle, 10);
        r
    }

    #[test]
    fn export_is_deterministic_and_reconciles() {
        let (a, b) = (sample_recorder(), sample_recorder());
        let mut ta = ChromeTrace::new();
        ta.add_platform(1, "lvmm", &a);
        let mut tb = ChromeTrace::new();
        tb.add_platform(1, "lvmm", &b);
        assert_eq!(ta.finish(), tb.finish());

        // Span cycles reconcile with what was charged.
        let total: u64 = a.spans.spans().iter().map(|s| s.len()).sum();
        assert_eq!(total, a.spans.grand_total());
        assert_eq!(total, 1100);
    }

    #[test]
    fn flows_export_as_paired_start_finish_events() {
        use crate::causal::TraceOp;
        let mut r = Recorder::new();
        r.enable_tracing();
        r.enable_causal();
        r.irq(100, Dev::Pit, 0);
        r.inta(150, 0);
        r.eoi(200);
        r.set_active_core(1);
        r.tracepoint(300, TraceOp::Begin, 7);
        r.tracepoint(400, TraceOp::End, 7);
        let mut t = ChromeTrace::new();
        t.add_platform(1, "lvmm", &r);
        let json = t.finish();
        // Every flow start has a finish with the same bound id.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 3);
        assert!(json.contains("\"name\":\"irq-dispatch\""));
        assert!(json.contains("\"name\":\"span:7\""));
        // Core and device tracks are labeled.
        assert!(json.contains("\"name\":\"core1\""));
        assert!(json.contains("\"name\":\"dev:pit\""));
        // Deterministic across identical runs is covered by the e2e suite;
        // here just pin that two exports of the same recorder agree.
        let mut t2 = ChromeTrace::new();
        t2.add_platform(1, "lvmm", &r);
        assert_eq!(t2.finish(), json);
    }

    /// Structural sanity without a JSON parser: balanced braces/brackets
    /// outside strings, no unterminated string, envelope fields present.
    fn assert_well_formed(json: &str) {
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        let (mut depth_obj, mut depth_arr, mut in_str, mut prev_escape) =
            (0i32, 0i32, false, false);
        for c in json.chars() {
            if in_str {
                if prev_escape {
                    prev_escape = false;
                } else if c == '\\' {
                    prev_escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert_eq!((depth_obj, depth_arr, in_str), (0, 0, false));
    }

    #[test]
    fn export_is_valid_enough_json() {
        let r = sample_recorder();
        let mut t = ChromeTrace::new();
        t.add_platform(1, "lvmm", &r);
        assert_well_formed(&t.finish());
    }

    #[test]
    fn hostile_names_are_escaped_everywhere() {
        // A symbol/process name full of JSON-hostile bytes must survive
        // every emission path: process_name metadata, thread_name metadata
        // (both the `what` and `args.name` positions), and event names.
        let hostile = "evil\"sym\\name\n\u{1}end";
        let r = sample_recorder();
        let mut t = ChromeTrace::new();
        t.add_platform(1, hostile, &r);
        // Drive the metadata path with hostility in *both* interpolated
        // positions — this is the line-52 bug: `what` used to be embedded
        // raw.
        t.meta(1, 99, hostile, hostile);
        let json = t.finish();
        assert_well_formed(&json);
        // The raw bytes must never appear unescaped.
        assert!(!json.contains("evil\"sym"));
        assert!(json.contains("evil\\\"sym\\\\name\\u000a\\u0001end"));
    }
}
