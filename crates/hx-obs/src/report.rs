//! Unified report formatter for the bench harnesses.
//!
//! Every bench binary used to hand-roll its own `println!` table and CSV
//! string; this module gives them one table builder with two renderers —
//! aligned text for the terminal and CSV for downstream plotting — so the
//! numbers in both are guaranteed to come from the same cells.

use std::fmt::Write as _;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

#[derive(Clone, Debug)]
struct Column {
    header: String,
    align: Align,
}

/// A titled table plus free-form notes.
#[derive(Clone, Debug, Default)]
pub struct Report {
    title: String,
    columns: Vec<Column>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Add a column; first column is left-aligned by convention, the rest
    /// right-aligned unless specified.
    pub fn column(mut self, header: impl Into<String>, align: Align) -> Self {
        self.columns.push(Column {
            header: header.into(),
            align,
        });
        self
    }

    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.columns.len(), "row arity != column count");
        self.rows.push(cells);
    }

    /// A blank separator row in the text rendering (skipped in CSV).
    pub fn gap(&mut self) {
        self.rows.push(Vec::new());
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aligned, human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.header.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let mut header = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                header.push_str("  ");
            }
            let _ = match c.align {
                Align::Left => write!(header, "{:<width$}", c.header, width = widths[i]),
                Align::Right => write!(header, "{:>width$}", c.header, width = widths[i]),
            };
        }
        let _ = writeln!(out, "{}", header.trim_end());
        for row in &self.rows {
            if row.is_empty() {
                out.push('\n');
                continue;
            }
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = match self.columns[i].align {
                    Align::Left => write!(line, "{:<width$}", cell, width = widths[i]),
                    Align::Right => write!(line, "{:>width$}", cell, width = widths[i]),
                };
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for n in &self.notes {
            let _ = writeln!(out, "{n}");
        }
        out
    }

    /// CSV rendering: header row + data rows (title and gaps omitted).
    /// Notes trail the data as `# `-prefixed comment lines, so counters
    /// surfaced as notes (e.g. trace-ring drop counts) survive into the
    /// plotted artifact without disturbing the column grid.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| csv_cell(&c.header))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            if row.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{}",
                row.iter()
                    .map(|c| csv_cell(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Standard rendering of one exit-cause histogram row: count, min, p50,
/// p99, p99.9, max, mean — shared by `ablation_exits` and the `qStats`
/// pretty-printer.
pub fn hist_row(h: &crate::hist::CycleHist) -> [String; 7] {
    [
        h.count().to_string(),
        h.min().to_string(),
        h.p50().to_string(),
        h.p99().to_string(),
        h.p999().to_string(),
        h.max().to_string(),
        h.mean().to_string(),
    ]
}

/// The same histogram summary as [`hist_row`], rendered as a JSON object —
/// shared by the bench JSON emitters so both renderings come from the same
/// accessors.
pub fn hist_json(h: &crate::hist::CycleHist) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{},\"mean\":{}}}",
        h.count(),
        h.min(),
        h.p50(),
        h.p99(),
        h.p999(),
        h.max(),
        h.mean()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_csv_share_cells() {
        let mut r = Report::new("t")
            .column("platform", Align::Left)
            .column("mbps", Align::Right);
        r.row(["lvmm", "100.0"]);
        r.gap();
        r.row(["hosted", "27.5"]);
        r.note("note line");
        let text = r.to_text();
        assert!(text.contains("lvmm"));
        assert!(text.contains("note line"));
        let csv = r.to_csv();
        assert_eq!(csv, "platform,mbps\nlvmm,100.0\nhosted,27.5\n# note line\n");
    }

    #[test]
    fn hist_renderings_share_accessors() {
        let mut h = crate::hist::CycleHist::default();
        h.record(10);
        h.record(30);
        let row = hist_row(&h);
        let json = hist_json(&h);
        assert_eq!(row[0], "2");
        for cell in &row {
            assert!(json.contains(cell.as_str()), "{json} missing {cell}");
        }
    }

    #[test]
    fn csv_escapes_specials() {
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_cell("plain"), "plain");
    }
}
