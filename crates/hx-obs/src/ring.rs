//! Bounded trace-event ring with drop accounting.
//!
//! The ring never reallocates past its capacity and never blocks the
//! simulation: when full it wraps around, overwriting the *oldest* events
//! and counting each overwrite as a drop. Keeping the newest events is the
//! flight-recorder contract — after a crash, the tail of the trace is what
//! explains it — and the `dropped` counter tells the reader exactly how
//! much history fell off the front.

use crate::event::TraceEvent;

#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position once the ring is full (index of the oldest
    /// retained event).
    head: usize,
    /// Events overwritten after the ring filled up.
    dropped: u64,
    /// Every event ever offered, kept or not.
    total: u64,
}

impl TraceRing {
    /// Default capacity: generous enough for a bench window at full
    /// instrumentation, small enough to stay cache-friendly.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    pub fn new(cap: usize) -> Self {
        TraceRing {
            buf: Vec::new(),
            cap,
            head: 0,
            dropped: 0,
            total: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            if self.buf.is_empty() {
                // Defer the big allocation until tracing actually happens.
                self.buf.reserve_exact(self.cap.min(1 << 12));
            }
            self.buf.push(ev);
        } else {
            // Wrap: the oldest event is overwritten and counted as dropped.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head.min(self.buf.len()));
        older.iter().chain(newer.iter())
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn total_offered(&self) -> u64 {
        self.total
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dev, EventKind};

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            kind: EventKind::DeviceIrq {
                dev: Dev::Nic,
                irq: 5,
            },
        }
    }

    #[test]
    fn wraps_keeping_newest_and_counts_drops() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_offered(), 10);
        let kept: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_accounting_is_exact_across_many_wraps() {
        let mut r = TraceRing::new(3);
        for i in 0..1000 {
            r.push(ev(i));
            // Invariant at every step: kept + dropped == offered, and the
            // ring holds exactly the newest `min(i+1, cap)` events in order.
            assert_eq!(r.len() as u64 + r.dropped(), r.total_offered());
            let kept: Vec<u64> = r.iter().map(|e| e.at).collect();
            let lo = (i + 1).saturating_sub(r.capacity() as u64);
            let want: Vec<u64> = (lo..=i).collect();
            assert_eq!(kept, want);
        }
        assert_eq!(r.dropped(), 997);
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = TraceRing::new(8);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        let kept: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        assert_eq!((r.len(), r.dropped(), r.total_offered()), (0, 1, 1));
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn clear_resets_accounting() {
        let mut r = TraceRing::new(1);
        r.push(ev(0));
        r.push(ev(1));
        r.clear();
        assert_eq!((r.len(), r.dropped(), r.total_offered()), (0, 0, 0));
        r.push(ev(7));
        assert_eq!(r.iter().map(|e| e.at).collect::<Vec<_>>(), vec![7]);
    }
}
