//! Bounded trace-event ring with drop accounting.
//!
//! The ring never reallocates past its capacity and never blocks the
//! simulation: when full, new events are counted as dropped rather than
//! overwriting history. Keeping the *earliest* events favours boot/setup
//! analysis and makes the drop point explicit in the exported trace; the
//! `dropped` counter tells the reader exactly how much of the tail is
//! missing.

use crate::event::TraceEvent;

#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Events offered after the ring filled up.
    dropped: u64,
    /// Every event ever offered, kept or not.
    total: u64,
}

impl TraceRing {
    /// Default capacity: generous enough for a bench window at full
    /// instrumentation, small enough to stay cache-friendly.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    pub fn new(cap: usize) -> Self {
        TraceRing {
            buf: Vec::new(),
            cap,
            dropped: 0,
            total: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.cap {
            if self.buf.is_empty() {
                // Defer the big allocation until tracing actually happens.
                self.buf.reserve_exact(self.cap.min(1 << 12));
            }
            self.buf.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn total_offered(&self) -> u64 {
        self.total
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dev, EventKind};

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            kind: EventKind::DeviceIrq {
                dev: Dev::Nic,
                irq: 5,
            },
        }
    }

    #[test]
    fn keeps_head_and_counts_drops() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_offered(), 10);
        let kept: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clear_resets_accounting() {
        let mut r = TraceRing::new(1);
        r.push(ev(0));
        r.push(ev(1));
        r.clear();
        assert_eq!((r.len(), r.dropped(), r.total_offered()), (0, 0, 0));
    }
}
