//! Monitor behavior tests that need a whole machine: shadow-paging
//! equivalence against the architectural page-table semantics, and the
//! guest's *own* debug facilities running virtualized (its `ebreak`
//! handlers and single-step flag must keep working under the monitor —
//! a guest OS may well contain its own debugger).

use hx_cpu::mmu::pte;
use hx_cpu::{Cause, Mode, Reg};
use hx_machine::{Machine, MachineConfig, Platform};
use lvmm::LvmmPlatform;
use proptest::prelude::*;

fn boot(src: &str) -> LvmmPlatform {
    let program = hx_asm::assemble(src).expect("assembles");
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    LvmmPlatform::new(
        machine,
        program.symbols.get("start").unwrap_or(program.base()),
    )
}

/// Builds a guest that maps one page with `flags` at VA 0x40_0000 → PA
/// 0x20_0000, enables paging, then performs the access selected by `mode`
/// (0 = load, 1 = store, 2 = fetch). The handler records the virtual cause
/// at 0x900; success writes 0x51 there instead.
fn paging_probe(flags: u32, access: u32) -> String {
    let action = match access {
        0 => "lw   t1, 0(t0)",
        1 => "sw   t1, 0(t0)",
        _ => "jalr t2, t0, 0",
    };
    format!(
        "        .equ PT_ROOT, 0x100000
                 .equ PT_L2,   0x101000
                 .equ PT_L2B,  0x102000
         start:  csrw tvec, h
                 ; L1[0] -> L2 (identity region), L1[1] -> L2B (test page)
                 li   t0, PT_ROOT
                 li   t1, PT_L2 + 1
                 sw   t1, 0(t0)
                 ; identity map first 16 pages kernel-RWX
                 li   t0, PT_L2
                 li   t1, 0xf
                 li   t2, 16
         lp:     sw   t1, 0(t0)
                 addi t0, t0, 4
                 li   t3, 0x1000
                 add  t1, t1, t3
                 addi t2, t2, -1
                 bnez t2, lp
                 ; map the page-table pages
                 li   t0, PT_L2 + 0x100 * 4
                 li   t1, PT_ROOT + 0xf
                 sw   t1, 0(t0)
                 li   t1, PT_L2 + 0xf
                 sw   t1, 4(t0)
                 ; the probe mapping: VA 0x400000 (L1 index 1) via its own
                 ; page-aligned L2 table
                 li   t0, PT_ROOT + 4
                 li   t1, PT_L2B + 1
                 sw   t1, 0(t0)
                 li   t0, PT_L2B
                 li   t1, 0x200000 + {flags}
                 sw   t1, 0(t0)
                 ; go
                 li   t0, PT_ROOT + 1
                 csrw ptbr, t0
                 tlbflush
                 li   t0, 0x400000
                 li   t1, 0x77
                 {action}
                 li   t2, 0x51
                 sw   t2, 0x900(zero)
         halt:   j halt
         h:      csrr t3, cause
                 sw   t3, 0x900(zero)
         spin:   j spin
        ",
        flags = flags,
        action = action,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The monitor's shadow paging enforces exactly the guest page-table
    /// semantics: for random leaf permission bits and access kinds, the
    /// guest observes success or precisely the architectural fault cause.
    #[test]
    fn shadow_paging_matches_architecture(raw_flags in 0u32..32, access in 0u32..3) {
        let flags = raw_flags | pte::V & 0x1f; // valid bit optional via raw_flags
        let flags = flags & (pte::V | pte::R | pte::W | pte::X | pte::U);
        let mut vmm = boot(&paging_probe(flags, access));
        vmm.run_for(3_000_000);

        let observed = vmm.machine().mem.word(0x900);
        let ok = flags & pte::V != 0
            && match access {
                0 => flags & pte::R != 0,
                1 => flags & pte::W != 0,
                _ => flags & pte::X != 0,
            };
        let expected = if ok {
            // Fetch probes jump into a data page full of zeros; word zero
            // decodes as `add r0, r0, r0`, so execution runs on until the
            // page ends and fetch-faults on the next (unmapped) page.
            if access == 2 { Cause::InstrPageFault.code() } else { 0x51 }
        } else {
            match access {
                0 => Cause::LoadPageFault.code(),
                1 => Cause::StorePageFault.code(),
                _ => Cause::InstrPageFault.code(),
            }
        };
        prop_assert_eq!(
            observed, expected,
            "flags={:#x} access={} (V={} R={} W={} X={})",
            flags, access,
            flags & pte::V != 0, flags & pte::R != 0,
            flags & pte::W != 0, flags & pte::X != 0
        );
        // Whatever happened, the monitor itself must be intact.
        prop_assert!(!vmm.guest_stopped(), "monitor must not be collateral damage");
    }
}

#[test]
fn guest_virtual_single_step_flag_works() {
    // The guest kernel single-steps ITS OWN code using the (virtual) trap
    // flag — the same facility the monitor's stub uses, nested one level
    // down. Three steps are taken, then the guest clears the saved flag
    // and runs free.
    let mut vmm = boot(
        "start:  csrw tvec, h
                 li   s1, 0
                 csrs status, 8      ; set TF: trap after each instruction
                 nop
                 nop
                 nop
                 nop
                 li   s2, 1
         halt:   j halt
         h:      addi s1, s1, 1
                 li   t0, 3
                 blt  s1, t0, back
                 csrc status, 16     ; clear PTF: stop stepping after resume
         back:   tret
        ",
    );
    vmm.run_for(2_000_000);
    assert_eq!(
        vmm.machine().cpu.reg(Reg::R19),
        3,
        "exactly three virtual step traps"
    );
    assert_eq!(
        vmm.machine().cpu.reg(Reg::R20),
        1,
        "guest ran to completion"
    );
    assert!(!vmm.guest_stopped());
    // The *real* trap flag is not left dangling.
    let status = hx_cpu::Status(vmm.machine().cpu.read_csr(hx_cpu::Csr::Status));
    assert!(!status.tf());
}

#[test]
fn guest_own_ebreak_reaches_guest_handler() {
    // A guest OS may use `ebreak` itself (e.g. its own embedded debugger);
    // with no stub breakpoint planted there, the monitor must reflect it.
    let mut vmm = boot(
        "start:  csrw tvec, h
                 ebreak
                 li   s2, 1          ; resumed past the ebreak by handler
         halt:   j halt
         h:      csrr s1, cause
                 csrr t0, epc
                 addi t0, t0, 4
                 csrw epc, t0
                 tret
        ",
    );
    vmm.run_for(1_000_000);
    assert_eq!(vmm.machine().cpu.reg(Reg::R19), Cause::Breakpoint.code());
    assert_eq!(vmm.machine().cpu.reg(Reg::R20), 1);
    assert!(
        !vmm.guest_stopped(),
        "the stub must not hijack the guest's own breakpoints"
    );
}

#[test]
fn guest_ecall_roundtrip_with_arguments() {
    // Syscall convention exercised under full virtualization: user-ish code
    // passes arguments in a0/a1, the handler services and returns a result.
    let mut vmm = boot(
        "start:  csrw tvec, h
                 li   a0, 30
                 li   a1, 12
                 ecall
                 ; a0 now holds the sum
                 mv   s2, a0
         halt:   j halt
         h:      add  a0, a0, a1
                 csrr t0, epc
                 addi t0, t0, 4
                 csrw epc, t0
                 tret
        ",
    );
    vmm.run_for(1_000_000);
    assert_eq!(vmm.machine().cpu.reg(Reg::R20), 42);
    assert_eq!(vmm.vcpu().vmode, Mode::Supervisor);
}

#[test]
fn guest_address_space_switching_reuses_shadow_contexts() {
    // A kernel flipping between two page-table roots (two address spaces):
    // the pager caches both shadow contexts instead of rebuilding.
    let mut vmm = boot(
        "        .equ R1, 0x100000
                 .equ L2A, 0x101000
                 .equ R2, 0x102000
                 .equ L2B, 0x103000
         start:  csrw tvec, trap
                 ; both roots identity-map the first 16 pages
                 li   t0, R1
                 li   t1, L2A + 1
                 sw   t1, 0(t0)
                 li   t0, R2
                 li   t1, L2B + 1
                 sw   t1, 0(t0)
                 li   t0, L2A
                 li   t2, L2B
                 li   t1, 0xf
                 li   t3, 16
         lp:     sw   t1, 0(t0)
                 sw   t1, 0(t2)
                 addi t0, t0, 4
                 addi t2, t2, 4
                 li   t4, 0x1000
                 add  t1, t1, t4
                 addi t3, t3, -1
                 bnez t3, lp
                 ; map both page-table regions into both spaces
                 li   t0, L2A + 0x400
                 li   t2, L2B + 0x400
                 li   t1, R1 + 0xf
                 sw   t1, 0(t0)
                 sw   t1, 0(t2)
                 li   t1, L2A + 0xf
                 sw   t1, 4(t0)
                 sw   t1, 4(t2)
                 li   t1, R2 + 0xf
                 sw   t1, 8(t0)
                 sw   t1, 8(t2)
                 li   t1, L2B + 0xf
                 sw   t1, 12(t0)
                 sw   t1, 12(t2)
                 ; ping-pong between the spaces
                 li   s3, 50
         again:  li   t0, R1 + 1
                 csrw ptbr, t0
                 addi s4, s4, 1
                 li   t0, R2 + 1
                 csrw ptbr, t0
                 addi s4, s4, 1
                 addi s3, s3, -1
                 bnez s3, again
                 li   s2, 1
         halt:   j halt
         trap:   csrr s1, cause
         dead:   j dead
        ",
    );
    vmm.run_for(8_000_000);
    assert_eq!(
        vmm.machine().cpu.reg(Reg::R20),
        1,
        "cause={}",
        vmm.machine().cpu.reg(Reg::R19)
    );
    assert_eq!(vmm.machine().cpu.reg(Reg::R22), 100);
    let shadow = vmm.shadow_stats();
    assert!(
        shadow.contexts <= 4,
        "two guest roots (plus boot identity) must not create {} contexts",
        shadow.contexts
    );
}
