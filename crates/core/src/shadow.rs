//! Shadow paging: the monitor's page tables that the hardware *actually*
//! walks while the guest believes it controls its own.
//!
//! This module implements the paper's three-level memory protection on the
//! two-level hardware:
//!
//! * The monitor reserves the top of physical RAM for itself (shadow tables
//!   live there). **No shadow entry ever maps this region**, so neither the
//!   guest kernel nor its applications can touch the monitor — level 3.
//! * Each guest address space gets **two** shadow tables: the *kernel view*
//!   (all guest mappings) and the *user view* (only guest pages with the
//!   user bit). The monitor activates the view matching the guest's
//!   *virtual* mode, so guest-kernel pages are unreachable from guest
//!   applications even though the hardware runs both in user mode — level 2.
//! * Guest page permissions are folded into the shadow entries — level 1.
//!
//! Shadow entries are filled lazily on page faults and discarded wholesale
//! when the guest flushes its TLB or switches page tables (the architectural
//! contract that page-table edits require a `tlbflush` makes this correct).
//! Dirty tracking is preserved: a guest page whose PTE has `D = 0` is mapped
//! read-only first, so the guest PTE's dirty bit is set before any store
//! lands.

use hx_cpu::mmu::{self, pte, PAGE_SIZE};
use hx_cpu::Mode;
use hx_machine::{map, Ram};
use std::collections::HashMap;

/// Classification of a guest-physical page under the monitor's policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// Ordinary guest RAM — mapped through.
    GuestRam,
    /// Monitor-reserved RAM — never mapped (protection level 3).
    Monitor,
    /// A device the monitor emulates for the guest (PIC, PIT, UART).
    EmulatedMmio,
    /// A device passed through to the guest (disk controller, NIC).
    PassthroughMmio,
    /// Nothing lives here.
    Unmapped,
}

/// Classifies a guest-physical address.
pub fn classify(pa: u32, monitor_base: u32, ram_size: u32) -> PageClass {
    if pa < monitor_base {
        return PageClass::GuestRam;
    }
    if pa < ram_size {
        return PageClass::Monitor;
    }
    let page = pa & !(map::DEV_PAGE - 1);
    match page {
        map::PIC_BASE | map::PIT_BASE | map::UART_BASE => PageClass::EmulatedMmio,
        // The tracepoint page is passed through: guest tracepoint stores hit
        // the bus directly, so instrumented kernels pay no exit cost.
        map::HDC_BASE | map::NIC_BASE | map::TRACE_BASE => PageClass::PassthroughMmio,
        _ => PageClass::Unmapped,
    }
}

/// A guest page-table walk result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestWalk {
    /// Guest-physical address the guest mapping yields.
    pub gpa: u32,
    /// The leaf PTE value (after any A/D update).
    pub pte: u32,
    /// Physical address of the leaf PTE in guest memory.
    pub pte_addr: u32,
}

/// Why a guest walk failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestWalkErr {
    /// The guest's own tables deny the access — inject a guest page fault.
    GuestFault,
    /// A page-table pointer leaves guest RAM (e.g. aims at the monitor) —
    /// a protection violation, also surfaced to the guest as a fault.
    BadTable,
}

/// Walks the guest's page table with full validation: every table access is
/// confined to guest RAM below `monitor_base`. When `update_ad` is set, the
/// accessed bit (and dirty bit for stores) is written back into the guest
/// PTE, exactly as the hardware walker would on real hardware.
pub fn guest_walk(
    mem: &mut Ram,
    root: u32,
    va: u32,
    access: mmu::Access,
    vmode: Mode,
    monitor_base: u32,
    update_ad: bool,
) -> Result<GuestWalk, GuestWalkErr> {
    let in_guest_ram = |addr: u32| addr.checked_add(4).is_some() && addr + 4 <= monitor_base;
    let root = root & pte::PPN_MASK;
    let l1_addr = root + mmu::l1_index(va) * 4;
    if !in_guest_ram(l1_addr) {
        return Err(GuestWalkErr::BadTable);
    }
    let l1e = mem
        .read(l1_addr, hx_cpu::MemSize::Word)
        .map_err(|_| GuestWalkErr::BadTable)?;
    if l1e & pte::V == 0 || l1e & (pte::R | pte::W | pte::X) != 0 {
        return Err(GuestWalkErr::GuestFault);
    }
    let l2_addr = (l1e & pte::PPN_MASK) + mmu::l2_index(va) * 4;
    if !in_guest_ram(l2_addr) {
        return Err(GuestWalkErr::BadTable);
    }
    let mut leaf = mem
        .read(l2_addr, hx_cpu::MemSize::Word)
        .map_err(|_| GuestWalkErr::BadTable)?;
    let ok = leaf & pte::V != 0
        && (vmode != Mode::User || leaf & pte::U != 0)
        && match access {
            mmu::Access::Fetch => leaf & pte::X != 0,
            mmu::Access::Load => leaf & pte::R != 0,
            mmu::Access::Store => leaf & pte::W != 0,
        };
    if !ok {
        return Err(GuestWalkErr::GuestFault);
    }
    if update_ad {
        let want = pte::A
            | if access == mmu::Access::Store {
                pte::D
            } else {
                0
            };
        if leaf & want != want {
            leaf |= want;
            mem.write(l2_addr, leaf, hx_cpu::MemSize::Word)
                .map_err(|_| GuestWalkErr::BadTable)?;
        }
    }
    Ok(GuestWalk {
        gpa: (leaf & pte::PPN_MASK) | (va & mmu::PAGE_MASK),
        pte: leaf,
        pte_addr: l2_addr,
    })
}

/// Counters exposed for the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Shadow entries filled on demand.
    pub fills: u64,
    /// Context flushes (guest `tlbflush` / page-table switches).
    pub flushes: u64,
    /// Shadow contexts created.
    pub contexts: u64,
    /// Guest attempts to reach monitor memory, blocked.
    pub protection_violations: u64,
}

#[derive(Debug, Clone)]
struct ShadowPair {
    kernel_root: u32,
    user_root: u32,
    l2_pages: Vec<u32>,
}

/// The shadow page-table manager.
///
/// All tables live in the monitor's reserved region of machine RAM, so the
/// hardware walker reads them like any other page table.
#[derive(Debug, Clone)]
pub struct ShadowPager {
    region_base: u32,
    region_end: u32,
    bump: u32,
    free: Vec<u32>,
    contexts: HashMap<u32, ShadowPair>,
    /// Statistics (public for the benchmark harnesses).
    pub stats: ShadowStats,
}

/// Maximum cached guest address spaces before a wholesale eviction.
const MAX_CONTEXTS: usize = 8;

impl ShadowPager {
    /// Creates a pager managing the page-aligned region
    /// `[region_base, region_end)` of monitor memory.
    ///
    /// # Panics
    ///
    /// Panics if the region is not page-aligned or too small to hold a
    /// single context.
    pub fn new(region_base: u32, region_end: u32) -> ShadowPager {
        assert_eq!(region_base % PAGE_SIZE, 0, "region must be page-aligned");
        assert_eq!(region_end % PAGE_SIZE, 0, "region must be page-aligned");
        assert!(
            region_end - region_base >= 8 * PAGE_SIZE,
            "shadow region too small"
        );
        ShadowPager {
            region_base,
            region_end,
            bump: region_base,
            free: Vec::new(),
            contexts: HashMap::new(),
            stats: ShadowStats::default(),
        }
    }

    /// Base of the monitor-reserved region this pager protects.
    pub fn region_base(&self) -> u32 {
        self.region_base
    }

    fn alloc_page(&mut self, mem: &mut Ram) -> u32 {
        let page = if let Some(p) = self.free.pop() {
            p
        } else if self.bump < self.region_end {
            let p = self.bump;
            self.bump += PAGE_SIZE;
            p
        } else {
            panic!("shadow page pool exhausted; enlarge the monitor region");
        };
        mem.as_bytes_mut()[page as usize..(page + PAGE_SIZE) as usize].fill(0);
        page
    }

    /// Gets (creating if needed) the shadow root for `(guest_ptbr_key,
    /// vmode)`. Key convention: the guest's raw virtual `PTBR` value, or `0`
    /// when guest paging is off.
    pub fn root_for(&mut self, mem: &mut Ram, key: u32, vmode: Mode) -> u32 {
        if !self.contexts.contains_key(&key) {
            if self.contexts.len() >= MAX_CONTEXTS {
                self.flush_all(mem);
            }
            let kernel_root = self.alloc_page(mem);
            let user_root = self.alloc_page(mem);
            self.contexts.insert(
                key,
                ShadowPair {
                    kernel_root,
                    user_root,
                    l2_pages: Vec::new(),
                },
            );
            self.stats.contexts += 1;
        }
        let pair = &self.contexts[&key];
        match vmode {
            Mode::Supervisor => pair.kernel_root,
            Mode::User => pair.user_root,
        }
    }

    /// Installs a shadow leaf mapping `va → pa` with `flags` into the given
    /// view of context `key`.
    pub fn map(&mut self, mem: &mut Ram, key: u32, vmode: Mode, va: u32, pa: u32, flags: u32) {
        let root = self.root_for(mem, key, vmode);
        let l1_addr = root + mmu::l1_index(va) * 4;
        let l1e = mem.word(l1_addr);
        let l2_base = if l1e & pte::V == 0 {
            let page = self.alloc_page(mem);
            mem.write(l1_addr, pte::table(page), hx_cpu::MemSize::Word)
                .unwrap();
            self.contexts.get_mut(&key).unwrap().l2_pages.push(page);
            page
        } else {
            l1e & pte::PPN_MASK
        };
        let l2_addr = l2_base + mmu::l2_index(va) * 4;
        mem.write(l2_addr, pte::leaf(pa, flags), hx_cpu::MemSize::Word)
            .unwrap();
        self.stats.fills += 1;
    }

    /// Discards every shadow entry of context `key` (both views), returning
    /// its level-2 pages to the pool. The caller must flush the hardware
    /// TLB.
    pub fn flush_context(&mut self, mem: &mut Ram, key: u32) {
        if let Some(pair) = self.contexts.get_mut(&key) {
            for page in pair.l2_pages.drain(..) {
                self.free.push(page);
            }
            for root in [pair.kernel_root, pair.user_root] {
                mem.as_bytes_mut()[root as usize..(root + PAGE_SIZE) as usize].fill(0);
            }
            self.stats.flushes += 1;
        }
    }

    /// Discards every context entirely.
    pub fn flush_all(&mut self, mem: &mut Ram) {
        let keys: Vec<u32> = self.contexts.keys().copied().collect();
        for key in keys {
            self.flush_context(mem, key);
            let pair = self.contexts.remove(&key).unwrap();
            self.free.push(pair.kernel_root);
            self.free.push(pair.user_root);
        }
    }

    /// Pages currently available without growing the pool (diagnostics).
    pub fn free_pages(&self) -> usize {
        self.free.len() + ((self.region_end - self.bump) / PAGE_SIZE) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_cpu::mmu::Access;

    const RAM: u32 = 4 * 1024 * 1024;
    const MON: u32 = RAM - 512 * 1024;

    fn setup() -> (ShadowPager, Ram) {
        (ShadowPager::new(MON, RAM), Ram::new(RAM as usize))
    }

    #[test]
    fn classify_map() {
        assert_eq!(classify(0x1000, MON, RAM), PageClass::GuestRam);
        assert_eq!(classify(MON, MON, RAM), PageClass::Monitor);
        assert_eq!(classify(RAM - 4, MON, RAM), PageClass::Monitor);
        assert_eq!(
            classify(map::PIC_BASE + 8, MON, RAM),
            PageClass::EmulatedMmio
        );
        assert_eq!(classify(map::PIT_BASE, MON, RAM), PageClass::EmulatedMmio);
        assert_eq!(classify(map::UART_BASE, MON, RAM), PageClass::EmulatedMmio);
        assert_eq!(
            classify(map::HDC_BASE + 0x40, MON, RAM),
            PageClass::PassthroughMmio
        );
        assert_eq!(
            classify(map::NIC_BASE, MON, RAM),
            PageClass::PassthroughMmio
        );
        assert_eq!(
            classify(map::TRACE_BASE, MON, RAM),
            PageClass::PassthroughMmio
        );
        assert_eq!(classify(0xe000_0000, MON, RAM), PageClass::Unmapped);
        assert_eq!(
            classify(map::MMIO_BASE + 0x9000, MON, RAM),
            PageClass::Unmapped
        );
    }

    #[test]
    fn map_then_hardware_walk_agrees() {
        let (mut pager, mut mem) = setup();
        pager.map(
            &mut mem,
            0,
            Mode::Supervisor,
            0x0040_0000,
            0x5000,
            pte::V | pte::R | pte::U,
        );
        let root = pager.root_for(&mut mem, 0, Mode::Supervisor);
        let w = mmu::walk(&mut mem, root, 0x0040_0123, Access::Load, Mode::User, false).unwrap();
        assert_eq!(w.paddr, 0x5123);
        // The user view is a separate table: nothing mapped there.
        let uroot = pager.root_for(&mut mem, 0, Mode::User);
        assert!(mmu::walk(
            &mut mem,
            uroot,
            0x0040_0123,
            Access::Load,
            Mode::User,
            false
        )
        .is_err());
    }

    #[test]
    fn flush_recycles_pages() {
        let (mut pager, mut mem) = setup();
        let before = pager.free_pages();
        for i in 0..20 {
            pager.map(
                &mut mem,
                0,
                Mode::Supervisor,
                i << 22,
                0x5000,
                pte::V | pte::R,
            );
        }
        assert!(pager.free_pages() < before);
        pager.flush_context(&mut mem, 0);
        let root = pager.root_for(&mut mem, 0, Mode::Supervisor);
        assert!(mmu::walk(&mut mem, root, 0, Access::Load, Mode::Supervisor, false).is_err());
        // All L2 pages returned (the two roots stay allocated).
        assert_eq!(pager.free_pages(), before - 2);
        assert!(pager.stats.flushes >= 1);
    }

    #[test]
    fn context_cap_evicts() {
        let (mut pager, mut mem) = setup();
        for key in 0..(MAX_CONTEXTS as u32 + 2) {
            pager.root_for(&mut mem, key + 1, Mode::Supervisor);
        }
        assert!(pager.contexts.len() <= MAX_CONTEXTS + 1);
    }

    #[test]
    fn guest_walk_validates_and_updates_ad() {
        let (_, mut mem) = setup();
        let root = 0x1_0000u32;
        let mut alloc = 0x1_1000u32;
        mmu::map_page(
            &mut mem,
            root,
            &mut alloc,
            0x8000,
            0x5000,
            pte::V | pte::R | pte::W,
        )
        .unwrap();

        let w = guest_walk(
            &mut mem,
            root,
            0x8010,
            Access::Load,
            Mode::Supervisor,
            MON,
            true,
        )
        .unwrap();
        assert_eq!(w.gpa, 0x5010);
        assert!(w.pte & pte::A != 0);
        assert!(w.pte & pte::D == 0);
        assert_eq!(
            mem.word(w.pte_addr) & pte::A,
            pte::A,
            "A written to guest PTE"
        );

        let w = guest_walk(
            &mut mem,
            root,
            0x8010,
            Access::Store,
            Mode::Supervisor,
            MON,
            true,
        )
        .unwrap();
        assert!(w.pte & pte::D != 0);

        // User access to non-U page denied.
        assert_eq!(
            guest_walk(&mut mem, root, 0x8010, Access::Load, Mode::User, MON, true),
            Err(GuestWalkErr::GuestFault)
        );
        // Unmapped VA.
        assert_eq!(
            guest_walk(
                &mut mem,
                root,
                0x0100_0000,
                Access::Load,
                Mode::Supervisor,
                MON,
                true
            ),
            Err(GuestWalkErr::GuestFault)
        );
    }

    #[test]
    fn guest_walk_rejects_tables_outside_guest_ram() {
        let (_, mut mem) = setup();
        // Root inside the monitor region.
        assert_eq!(
            guest_walk(
                &mut mem,
                MON + 0x1000,
                0,
                Access::Load,
                Mode::Supervisor,
                MON,
                true
            ),
            Err(GuestWalkErr::BadTable)
        );
        // L1 pointer into the monitor region.
        let root = 0x1_0000u32;
        mem.write(root, pte::table(MON), hx_cpu::MemSize::Word)
            .unwrap();
        assert_eq!(
            guest_walk(&mut mem, root, 0, Access::Load, Mode::Supervisor, MON, true),
            Err(GuestWalkErr::BadTable)
        );
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_region_panics() {
        ShadowPager::new(0x100, 0x10000);
    }
}
