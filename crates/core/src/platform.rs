//! `LvmmPlatform`: the guest OS running deprivileged under the lightweight
//! monitor.
//!
//! The monitor intercepts every trap and interrupt at the machine boundary
//! ([`hx_machine::MachineStep`]), and:
//!
//! * emulates the guest kernel's privileged instructions against the
//!   virtual CPU ([`crate::VCpu`]);
//! * resolves shadow page faults by walking the *guest's* page tables and
//!   filling the active shadow table ([`crate::ShadowPager`]);
//! * emulates guest accesses to the interrupt controller and timer
//!   ([`crate::chipset::VChipset`]) while passing the disk controller and
//!   NIC straight through;
//! * reflects real device interrupts into the virtual PIC and injects them
//!   when the guest's virtual interrupt window opens;
//! * runs the debug stub ([`crate::Stub`]) whenever UART traffic arrives —
//!   including while the guest streams I/O at full rate, and including when
//!   the guest has destroyed its own memory.

use crate::chipset::VChipset;
use crate::costs;
use crate::shadow::{classify, guest_walk, GuestWalkErr, PageClass, ShadowPager, ShadowStats};
use crate::stub::{err, StepIntent, Stub, StubStats, Watchpoint};
use crate::vcpu::VCpu;
use hx_cpu::csr::{Csr, Status};
use hx_cpu::isa::{Instr, LoadKind, StoreKind, SysOp, EBREAK_WORD};
use hx_cpu::mmu::{pte, Access, PAGE_MASK};
use hx_cpu::trap::{Cause, Trap};
use hx_cpu::{MemSize, Mode};
use hx_machine::engine::{ExitPolicy, FlightRecorder, ProgressGuard};
use hx_machine::platform::PlatformStep;
use hx_machine::{map, smp, Machine, Platform, TimeBucket, TimeStats};
use hx_obs::journal::{fnv1a, FNV_OFFSET};
use hx_obs::{EventKind, ExitCause, HostPhase, JournalInput, ReplayCursor, StateDigest};
use hx_query::{Expr, SliceCtx};
use rdbg::msg::{Command, FlowSample, MetricsSample, ProfSample, Reply, StatsSample, StopReason};
use rdbg::wire::{self, WireEvent};

/// Monitor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LvmmConfig {
    /// Bytes of RAM reserved at the top of memory for the monitor (shadow
    /// tables and headroom).
    pub monitor_mem: u32,
    /// Stop in the debugger when the guest faults without having installed
    /// a trap vector (instead of spinning at address zero).
    pub debug_on_unhandled_fault: bool,
}

impl Default for LvmmConfig {
    fn default() -> Self {
        LvmmConfig {
            monitor_mem: 2 * 1024 * 1024,
            debug_on_unhandled_fault: true,
        }
    }
}

/// Exit counters — the paper-adjacent ablation data (Table A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LvmmStats {
    /// Privileged-instruction emulations (CSR, `tret`, `wfi`, `tlbflush`).
    pub exits_privileged: u64,
    /// Emulated MMIO accesses (virtual PIC/PIT/UART).
    pub exits_mmio: u64,
    /// Shadow page-table fills.
    pub exits_shadow: u64,
    /// Real device interrupts reflected into the virtual PIC.
    pub exits_irq_reflect: u64,
    /// Debug exits (breakpoints, single steps, watchpoints, break-ins).
    pub exits_debug: u64,
    /// Guest faults re-injected to the guest's own handler.
    pub faults_injected: u64,
    /// Virtual interrupts injected.
    pub irqs_injected: u64,
    /// Guest attempts to reach monitor memory or page tables outside guest
    /// RAM — all blocked.
    pub protection_violations: u64,
    /// Single guest stores emulated because a watchpoint shares their page.
    pub emulated_stores: u64,
    /// Single guest loads emulated because a read watchpoint shares their
    /// page.
    pub emulated_loads: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Running,
    GuestIdle,
    Stopped,
}

/// Everything that changes as the platform runs — the restorable part of a
/// flight-recorder checkpoint. Immutable construction parameters (`entry`,
/// `monitor_base`, `ram_size`, `cfg`) are deliberately excluded.
#[derive(Debug, Clone)]
struct LvmmSnapshot {
    machine: Machine,
    vcpu: VCpu,
    vcpus: Vec<VCpu>,
    cur_core: usize,
    vipi: Vec<u8>,
    shadow: ShadowPager,
    chipset: VChipset,
    stub: Stub,
    stats: TimeStats,
    mstats: LvmmStats,
    state: RunState,
    progress: ProgressGuard,
}

/// The lightweight-VMM platform (see the [module docs](self)).
///
/// The run loop, cycle charging and instruction batching come from the
/// shared [`ExitPolicy`] engine; this type implements the lvmm-specific
/// exit handling (privileged emulation, shadow paging, the debug stub) plus
/// the time-travel [`FlightRecorder`] (boxed so a platform without the
/// recorder pays one pointer of overhead).
#[derive(Debug)]
pub struct LvmmPlatform {
    machine: Machine,
    vcpu: VCpu,
    /// Seat storage for every core's virtual CPU; `vcpus[cur_core]` holds a
    /// stale placeholder while that core's state lives in `self.vcpu`
    /// (mirrors how [`Machine`] seats its real CPUs).
    vcpus: Vec<VCpu>,
    /// The core whose virtual CPU is in `self.vcpu`.
    cur_core: usize,
    /// Per-core pending *virtual* IPI line masks: the monitor consumed the
    /// real IPI and owes the guest core an injected vector.
    vipi: Vec<u8>,
    shadow: ShadowPager,
    chipset: VChipset,
    stub: Stub,
    stats: TimeStats,
    mstats: LvmmStats,
    state: RunState,
    entry: u32,
    monitor_base: u32,
    ram_size: u32,
    cfg: LvmmConfig,
    // Livelock guard: identical consecutive shadow faults indicate a bug.
    progress: ProgressGuard,
    flight: Option<Box<FlightRecorder<LvmmSnapshot>>>,
}

impl LvmmPlatform {
    /// Installs the monitor on `machine` and prepares the guest to boot at
    /// `entry` (image already loaded). The guest starts in *virtual*
    /// supervisor mode with paging off — exactly what it would see on real
    /// hardware — while the real CPU runs it in user mode behind an
    /// identity shadow table.
    ///
    /// # Panics
    ///
    /// Panics if the machine's RAM is too small for the configured monitor
    /// region.
    pub fn new(machine: Machine, entry: u32) -> LvmmPlatform {
        Self::with_config(machine, entry, LvmmConfig::default())
    }

    /// [`LvmmPlatform::new`] with an explicit [`LvmmConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the machine's RAM is too small for the monitor region.
    pub fn with_config(mut machine: Machine, entry: u32, cfg: LvmmConfig) -> LvmmPlatform {
        let ram_size = machine.config().ram_size as u32;
        assert!(cfg.monitor_mem < ram_size, "monitor region exceeds RAM");
        let monitor_base = ram_size - cfg.monitor_mem;
        let mut shadow = ShadowPager::new(monitor_base, ram_size);

        // Deprivilege the guest; the monitor owns the real privileged state.
        machine.cpu.set_mode(Mode::User);
        machine.cpu.set_pc(entry);
        machine.cpu.write_csr(Csr::Status, Status::IE);
        // Identity shadow context (guest paging off), kernel view active.
        let root = shadow.root_for(&mut machine.mem, 0, Mode::Supervisor);
        machine.cpu.write_csr(Csr::Ptbr, root | 1);
        // Secondary cores boot deprivileged too, sharing the identity
        // shadow until they install their own address space; their PC is
        // set by the startup IPI when the guest brings them online.
        let cores = machine.num_cores();
        for i in 1..cores {
            let c = machine.core_mut(i);
            c.set_mode(Mode::User);
            c.write_csr(Csr::Status, Status::IE);
            c.write_csr(Csr::Ptbr, root | 1);
        }
        // The monitor listens to the real UART.
        machine
            .bus_write(
                map::UART_BASE + hx_machine::uart::reg::CTRL,
                1,
                MemSize::Word,
            )
            .expect("UART present");

        LvmmPlatform {
            machine,
            vcpu: VCpu::new(),
            vcpus: vec![VCpu::new(); cores],
            cur_core: 0,
            vipi: vec![0; cores],
            shadow,
            chipset: VChipset::new(),
            stub: Stub::new(),
            stats: TimeStats::new(),
            mstats: LvmmStats::default(),
            state: RunState::Running,
            entry,
            monitor_base,
            ram_size,
            cfg,
            progress: ProgressGuard::new(),
            flight: None,
        }
    }

    /// Turns on the flight recorder: every nondeterministic input and device
    /// event is journaled from this point on, and a full machine snapshot is
    /// taken every `every` cycles (see
    /// [`hx_obs::CheckpointStore::DEFAULT_EVERY`] for a reasonable cadence).
    /// An initial checkpoint is taken immediately so the whole recorded
    /// window is reachable by `seek`.
    ///
    /// Enable this *before* running the workload — a journal that misses
    /// early inputs cannot reproduce the run.
    pub fn enable_flight_recorder(&mut self, every: u64) {
        self.machine.obs.enable_journal(self.name());
        let now = self.machine.now();
        let digest = self.state_digest();
        let snap = self.snapshot();
        self.flight = Some(Box::new(FlightRecorder::new(every, now, digest, snap)));
    }

    /// Is the flight recorder on?
    pub fn flight_recorder_enabled(&self) -> bool {
        self.flight.is_some()
    }

    /// Number of checkpoints currently held (diagnostics and tests).
    pub fn checkpoint_count(&self) -> usize {
        self.flight.as_ref().map_or(0, |f| f.checkpoints.len())
    }

    /// Checksums of guest-visible machine state, used to audit replay
    /// fidelity across checkpoints.
    fn state_digest(&self) -> StateDigest {
        let ram = fnv1a(FNV_OFFSET, self.machine.mem.as_bytes());
        let mut regs = FNV_OFFSET;
        // Every core folds in, in index order; on a single-core machine the
        // loop body runs once over the active CPU, so the digest is
        // bit-identical to the pre-SMP formula.
        for i in 0..self.machine.num_cores() {
            let cpu = self.machine.core(i);
            for r in cpu.regs() {
                regs = fnv1a(regs, &r.to_le_bytes());
            }
            regs = fnv1a(regs, &cpu.pc().to_le_bytes());
            for csr in [Csr::Status, Csr::Tvec, Csr::Ptbr, Csr::Epc, Csr::Cause] {
                regs = fnv1a(regs, &cpu.read_csr(csr).to_le_bytes());
            }
        }
        let s = self.shadow.stats;
        let mut shadow = FNV_OFFSET;
        for v in [s.fills, s.flushes, s.contexts, s.protection_violations] {
            shadow = fnv1a(shadow, &v.to_le_bytes());
        }
        StateDigest { ram, regs, shadow }
    }

    fn snapshot(&self) -> LvmmSnapshot {
        LvmmSnapshot {
            machine: self.machine.clone(),
            vcpu: self.vcpu.clone(),
            vcpus: self.vcpus.clone(),
            cur_core: self.cur_core,
            vipi: self.vipi.clone(),
            shadow: self.shadow.clone(),
            chipset: self.chipset.clone(),
            stub: self.stub.clone(),
            stats: self.stats,
            mstats: self.mstats,
            state: self.state,
            progress: self.progress,
        }
    }

    fn restore(&mut self, snap: LvmmSnapshot) {
        self.machine = snap.machine;
        self.vcpu = snap.vcpu;
        self.vcpus = snap.vcpus;
        self.cur_core = snap.cur_core;
        self.vipi = snap.vipi;
        self.shadow = snap.shadow;
        self.chipset = snap.chipset;
        self.stub = snap.stub;
        self.stats = snap.stats;
        self.mstats = snap.mstats;
        self.state = snap.state;
        self.progress = snap.progress;
    }

    /// Takes a checkpoint when one is due. Runs during replay too: a seek
    /// truncates the checkpoint store to its restore point and the re-run
    /// rebuilds the later checkpoints on the (identical) new timeline.
    fn maybe_checkpoint(&mut self) {
        let now = self.machine.now();
        let due = self.flight.as_ref().is_some_and(|f| f.checkpoints.due(now));
        if !due {
            return;
        }
        // Checkpoint capture is heavy host work (a full-state clone) that
        // happens *after* deferred guest-execution time; close the guest
        // window first so the clone is charged to Journal, not GuestExec.
        self.machine.obs.host_mark(HostPhase::GuestExec);
        let digest = self.state_digest();
        let snap = self.snapshot();
        if let Some(f) = &mut self.flight {
            f.checkpoints.record(now, digest, snap);
        }
        self.machine.obs.host_mark(HostPhase::Journal);
    }

    /// Moves the platform to `target` on the recorded timeline.
    ///
    /// Backward: restores the nearest checkpoint at or before `target`,
    /// then deterministically re-executes history — re-injecting journaled
    /// UART bytes and NIC frames at their recorded cycles — until the
    /// machine reaches `target`. Forward: free-runs to `target`. Either way
    /// the guest parks there with a [`StopReason::TimeTravel`] stop, and
    /// subsequent execution rewrites the future (new-branch semantics: the
    /// journal, checkpoints and stop history beyond the restore point are
    /// truncated and rebuilt).
    fn seek_to(&mut self, target: u64) -> Reply {
        let Some(fr) = self.flight.as_deref() else {
            return Reply::Error(err::RECORDER);
        };
        if fr.replaying {
            return Reply::Error(err::RECORDER);
        }
        // Full journal as of now — the re-run script. The restored
        // machine's own journal only reaches the checkpoint; re-injection
        // re-records the segment up to `target` identically.
        let Some(journal) = self.machine.obs.journal().cloned() else {
            return Reply::Error(err::RECORDER);
        };
        let mut cursor = ReplayCursor::new(&journal);
        if target < self.machine.now() {
            let fr = self.flight.as_mut().expect("checked above");
            let Some(cp) = fr.checkpoints.nearest_at_or_before(target) else {
                return Reply::Error(err::RECORDER);
            };
            let cp_at = cp.at;
            let snap = cp.state.clone();
            fr.checkpoints.truncate_after(cp_at);
            fr.stop_history.retain(|&c| c <= cp_at);
            self.restore(snap);
        }
        self.flight.as_mut().expect("checked above").replaying = true;
        // Inputs already baked into the (possibly restored) machine state
        // are exactly the ones its own journal holds — skip by count, not
        // by cycle, so records tied with the checkpoint cycle (e.g. a break
        // byte journaled before the initial cycle-0 checkpoint existed) are
        // not wrongly dropped.
        let done = self.machine.obs.journal().map_or(0, |j| j.inputs.len());
        cursor.skip_first(done);
        while self.machine.now() < target {
            let now = self.machine.now();
            while let Some(rec) = cursor.pop_due(now) {
                match rec.input {
                    JournalInput::UartRx(bytes) => self.machine.uart_input(&bytes),
                    JournalInput::NicRx(frame) => self.inject_rx_frame(&frame),
                }
            }
            if self.step() == PlatformStep::Stuck {
                break;
            }
        }
        // Stub replies regenerated during the re-run were already delivered
        // on the original timeline; the host must not see them twice.
        let _ = self.machine.uart_output();
        self.flight.as_mut().expect("checked above").replaying = false;
        let pc = self.machine.cpu.pc();
        let cycle = self.machine.now();
        self.stub_stop(StopReason::TimeTravel { pc, cycle });
        Reply::Ok
    }

    /// Monitor exit/injection counters.
    pub fn monitor_stats(&self) -> LvmmStats {
        self.mstats
    }

    /// Shadow-paging counters.
    pub fn shadow_stats(&self) -> ShadowStats {
        self.shadow.stats
    }

    /// Debug-stub counters.
    pub fn stub_stats(&self) -> StubStats {
        self.stub.stats
    }

    /// The guest's virtual CPU state (diagnostics and tests).
    pub fn vcpu(&self) -> &VCpu {
        &self.vcpu
    }

    /// Is the guest currently stopped under debugger control?
    pub fn guest_stopped(&self) -> bool {
        self.stub.stopped
    }

    /// Base of the monitor-reserved memory region.
    pub fn monitor_base(&self) -> u32 {
        self.monitor_base
    }

    /// Virtual-PIC `(IRR, ISR, IMR)` snapshot, for diagnostics.
    pub fn chipset_vpic(&self) -> (u8, u8, u8) {
        (
            self.chipset.vpic.irr(),
            self.chipset.vpic.isr(),
            self.chipset.vpic.imr(),
        )
    }

    fn consume_monitor(&mut self, cycles: u64) {
        self.consume(TimeBucket::Monitor, cycles);
    }

    fn shadow_key(&self) -> u32 {
        if self.vcpu.paging_enabled() {
            self.vcpu.ptbr
        } else {
            0
        }
    }

    /// Activates the shadow view matching the guest's current virtual mode
    /// and address space.
    fn activate_shadow(&mut self) {
        let key = self.shadow_key();
        let root = self
            .shadow
            .root_for(&mut self.machine.mem, key, self.vcpu.vmode);
        self.machine.cpu.write_csr(Csr::Ptbr, root | 1);
    }

    /// Injects a virtual trap into the guest (its handler runs next).
    fn inject_guest_trap(&mut self, cause: Cause, epc: u32, tval: u32) {
        let unhandled = self.vcpu.tvec == 0;
        // Double fault: a synchronous fault raised *at the handler entry
        // itself* means the guest's handler is gone (e.g. overwritten by
        // the bug under investigation). A real kernel would triple-fault
        // and reset; the monitor parks the guest for debugging instead —
        // the stability story of the paper.
        let double_fault = epc == self.vcpu.tvec
            && !matches!(cause, Cause::Interrupt | Cause::EcallU | Cause::EcallS);
        if (unhandled || double_fault) && self.cfg.debug_on_unhandled_fault {
            self.stub_stop(StopReason::Fault {
                pc: epc,
                cause: cause.code(),
            });
            return;
        }
        let vcause = self.vcpu.virtual_cause(cause);
        let handler = self.vcpu.enter_trap(vcause, epc, tval);
        self.activate_shadow();
        self.machine.cpu.set_pc(handler);
        self.sync_tf();
        self.consume_monitor(costs::INJECT_TRAP);
        self.mstats.faults_injected += 1;
    }

    /// Aligns the monitor's per-core virtual CPU with the machine's active
    /// core. The machine rotates cores at its own quantum boundaries; the
    /// monitor only observes the outcome at its next exit, so every exit
    /// entry point calls this first. No-op (and byte-free) on single-core.
    fn sync_core(&mut self) {
        let active = self.machine.active_core();
        if active == self.cur_core {
            return;
        }
        let prev = self.cur_core;
        std::mem::swap(&mut self.vcpu, &mut self.vcpus[prev]);
        std::mem::swap(&mut self.vcpu, &mut self.vcpus[active]);
        self.cur_core = active;
        // The real Ptbr travels with the core's seat, but the shadow tables
        // may have been flushed while another core held the seat — recompute
        // the root for this core's virtual address space.
        self.activate_shadow();
    }

    /// Handles a real inter-processor interrupt surfaced to the active
    /// core: the monitor consumed it at the machine boundary and re-latches
    /// it as a *virtual* IPI to inject when the guest's window opens.
    fn handle_ipi(&mut self, line: u8) {
        self.consume_monitor(costs::EXIT_BASE + costs::REFLECT_IRQ);
        self.record_exit(ExitCause::IrqReflect, costs::EXIT_BASE + costs::REFLECT_IRQ);
        self.mstats.exits_irq_reflect += 1;
        self.vipi[self.cur_core] |= 1 << line;
        self.maybe_inject_irq();
    }

    /// Opens the virtual interrupt window if possible: injects the highest
    /// priority pending virtual interrupt. Virtual IPIs outrank the virtual
    /// PIC (they model the local APIC), matching the machine's own
    /// arbitration order; the virtual PIC wires to core 0 only, like the
    /// real one.
    fn maybe_inject_irq(&mut self) {
        if self.state == RunState::Stopped || !self.vcpu.interrupts_enabled() {
            return;
        }
        let pending = self.vipi[self.cur_core];
        if pending != 0 {
            let line = pending.trailing_zeros() as u8;
            self.vipi[self.cur_core] &= !(1 << line);
            let epc = self.machine.cpu.pc();
            let vector = smp::VECTOR_BASE + line;
            let handler = self.vcpu.enter_trap(Cause::Interrupt, epc, vector as u32);
            self.activate_shadow();
            self.machine.cpu.set_pc(handler);
            self.sync_tf();
            self.consume_monitor(costs::INJECT_TRAP);
            self.record_exit(ExitCause::IrqInject, costs::INJECT_TRAP);
            self.mstats.irqs_injected += 1;
            // The injected vector is this core's wake event if it parked.
            self.machine.wake_core(self.cur_core);
            self.state = RunState::Running;
            return;
        }
        if self.cur_core != 0 {
            return;
        }
        if let Some((irq, vector)) = self.chipset.vpic.inta() {
            {
                let now = self.machine.now();
                self.machine.obs.prof_irq_entry(irq as u32, now);
                // Virtual-PIC INTA is the guest's ISR entry under this
                // monitor — the causal dispatch flow ends here, not at the
                // monitor's earlier receipt of the real interrupt.
                self.machine.obs.inta(now, irq as u32);
            }
            let epc = self.machine.cpu.pc();
            let handler = self.vcpu.enter_trap(Cause::Interrupt, epc, vector as u32);
            self.activate_shadow();
            self.machine.cpu.set_pc(handler);
            self.sync_tf();
            self.consume_monitor(costs::INJECT_TRAP);
            self.record_exit(ExitCause::IrqInject, costs::INJECT_TRAP);
            self.mstats.irqs_injected += 1;
            if self.machine.num_cores() > 1 {
                self.machine.wake_core(0);
            }
            self.state = RunState::Running;
        }
    }

    /// Mirrors the *virtual* single-step flag and any stub stepping intent
    /// onto the real `STATUS.TF`.
    fn sync_tf(&mut self) {
        let want = self.stub.step_intent.is_some() || self.vcpu.status.tf();
        let s = Status(self.machine.cpu.read_csr(Csr::Status));
        self.machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::TF, want).0);
    }

    // ------------------------------------------------------------------
    // Trap dispatch
    // ------------------------------------------------------------------

    fn dispatch_trap(&mut self, trap: Trap) {
        self.sync_core();
        // Measure the monitor cycles this exit costs, end to end, and
        // attribute them to one cause in the exit histograms. The trailing
        // interrupt-window check accounts separately (as `irq-inject`).
        let monitor_before = self.stats.monitor;
        let cause = match trap.cause {
            Cause::PrivilegedInstruction => {
                self.consume_monitor(costs::EXIT_BASE);
                self.mstats.exits_privileged += 1;
                self.emulate_privileged(trap);
                ExitCause::Privileged
            }
            Cause::InstrPageFault | Cause::LoadPageFault | Cause::StorePageFault => {
                self.consume_monitor(costs::EXIT_BASE);
                self.handle_shadow_fault(trap)
            }
            Cause::Breakpoint => {
                self.consume_monitor(costs::EXIT_BASE);
                if self.stub.breakpoints.contains_key(&trap.epc) {
                    self.mstats.exits_debug += 1;
                    if self.bp_condition_holds(trap.epc) {
                        self.stub_stop(StopReason::Breakpoint { pc: trap.epc });
                    } else {
                        // Condition false: silently step over the planted
                        // `ebreak` and keep running — the guest never
                        // observes the stop.
                        self.arm_resume(StepIntent::Resume);
                    }
                } else {
                    // The guest's own `ebreak` (e.g. its embedded debugger).
                    self.inject_guest_trap(Cause::Breakpoint, trap.epc, trap.tval);
                }
                ExitCause::Debug
            }
            Cause::DebugStep => {
                self.consume_monitor(costs::EXIT_BASE);
                self.handle_debug_step(trap);
                ExitCause::Debug
            }
            other => {
                // Ecall, misalignments, access faults, illegal instructions:
                // the guest's business — reflect to its virtual handler.
                self.consume_monitor(costs::EXIT_BASE);
                self.inject_guest_trap(other, trap.epc, trap.tval);
                ExitCause::IrqInject
            }
        };
        let delta = self.stats.monitor - monitor_before;
        self.record_exit(cause, delta);
        self.maybe_inject_irq();
    }

    fn handle_debug_step(&mut self, trap: Trap) {
        // The intercepted DebugStep did not clear the real TF (no take_trap
        // ran); drop it before deciding what to do next.
        let s = Status(self.machine.cpu.read_csr(Csr::Status));
        self.machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::TF, false).0);

        if let Some(addr) = self.stub.lifted_bp.take() {
            // Re-plant the breakpoint we stepped off.
            if let Some(pa) = self.debug_translate(addr) {
                let _ = self.machine.mem.write(pa, EBREAK_WORD, MemSize::Word);
            }
        }
        match self.stub.step_intent.take() {
            Some(StepIntent::Step) => {
                self.mstats.exits_debug += 1;
                self.stub_stop(StopReason::Step { pc: trap.epc });
            }
            Some(StepIntent::Resume) => {
                self.sync_tf(); // guest's own vTF may still want stepping
            }
            None => {
                if self.vcpu.status.tf() {
                    // The guest is single-stepping its own code.
                    self.inject_guest_trap(Cause::DebugStep, trap.epc, 0);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Privileged-instruction emulation (the "CPU-resources emulator")
    // ------------------------------------------------------------------

    fn emulate_privileged(&mut self, trap: Trap) {
        let pc = trap.epc;
        let Ok(instr) = Instr::decode(trap.tval) else {
            self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
            return;
        };
        match instr {
            Instr::Csr { op, rd, rs1, csr } => {
                self.consume_monitor(costs::EMUL_CSR);
                let Some(c) = Csr::from_number(csr) else {
                    self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
                    return;
                };
                let old = self.vcpu.read_csr(c, &self.machine.cpu);
                let writes = match op {
                    hx_cpu::isa::CsrOp::Rw => true,
                    _ => rs1 != hx_cpu::Reg::R0,
                };
                if writes {
                    if c.is_read_only() {
                        self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
                        return;
                    }
                    let src = self.machine.cpu.reg(rs1);
                    let new = match op {
                        hx_cpu::isa::CsrOp::Rw => src,
                        hx_cpu::isa::CsrOp::Rs => old | src,
                        hx_cpu::isa::CsrOp::Rc => old & !src,
                    };
                    let sensitive = self.vcpu.write_csr(c, new);
                    if c == Csr::Ptbr && sensitive {
                        // Guest address-space switch: activate (and possibly
                        // build) the matching shadow context.
                        self.consume_monitor(costs::SHADOW_FLUSH);
                        self.activate_shadow();
                    }
                    if c == Csr::Status {
                        self.sync_tf();
                    }
                }
                self.machine.cpu.set_reg(rd, old);
                self.machine.cpu.set_pc(pc.wrapping_add(4));
            }
            Instr::Sys { op: SysOp::Tret } => {
                self.consume_monitor(costs::EMUL_TRET);
                let resume = self.vcpu.leave_trap();
                self.activate_shadow();
                self.machine.cpu.set_pc(resume);
                self.sync_tf();
            }
            Instr::Sys { op: SysOp::Wfi } => {
                self.consume_monitor(costs::EMUL_WFI);
                self.machine.cpu.set_pc(pc.wrapping_add(4));
                if self.machine.num_cores() > 1 {
                    // Park just this core at the machine level so the
                    // scheduler hands the seat to a runnable sibling; the
                    // platform state stays Running for the others.
                    self.machine.park_active();
                } else {
                    self.state = RunState::GuestIdle;
                }
            }
            Instr::Sys {
                op: SysOp::TlbFlush,
            } => {
                self.consume_monitor(costs::SHADOW_FLUSH);
                let key = self.shadow_key();
                self.shadow.flush_context(&mut self.machine.mem, key);
                self.machine.cpu.tlb_flush();
                self.machine.cpu.set_pc(pc.wrapping_add(4));
            }
            _ => {
                self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
            }
        }
    }

    // ------------------------------------------------------------------
    // Shadow fault handling (paging + partial device emulation + level-3
    // protection)
    // ------------------------------------------------------------------

    fn handle_shadow_fault(&mut self, trap: Trap) -> ExitCause {
        let va = trap.tval;
        let access = Access::from_fault(trap.cause);
        let vmode = self.vcpu.vmode;
        {
            let now = self.machine.now();
            self.machine
                .obs
                .event(now, EventKind::ShadowFault { vaddr: va });
        }

        // Resolve the guest-physical address and guest permissions.
        let (gpa, gperm_w, gflags) = if self.vcpu.paging_enabled() {
            let root = self.vcpu.page_table_root();
            match guest_walk(
                &mut self.machine.mem,
                root,
                va,
                access,
                vmode,
                self.monitor_base,
                true,
            ) {
                Ok(w) => (w.gpa, w.pte & pte::W != 0 && w.pte & pte::D != 0, w.pte),
                Err(GuestWalkErr::GuestFault) => {
                    self.inject_guest_trap(trap.cause, trap.epc, va);
                    return ExitCause::Shadow;
                }
                Err(GuestWalkErr::BadTable) => {
                    self.mstats.protection_violations += 1;
                    self.shadow.stats.protection_violations += 1;
                    self.inject_guest_trap(trap.cause, trap.epc, va);
                    return ExitCause::Protection;
                }
            }
        } else {
            // Identity: kernel-era physical addressing.
            (
                va,
                true,
                pte::V | pte::R | pte::W | pte::X | pte::U | pte::A | pte::D,
            )
        };

        match classify(gpa, self.monitor_base, self.ram_size) {
            PageClass::Monitor => {
                // Level-3 protection: the monitor is untouchable.
                self.mstats.protection_violations += 1;
                self.shadow.stats.protection_violations += 1;
                self.inject_guest_trap(trap.cause, trap.epc, va);
                ExitCause::Protection
            }
            PageClass::Unmapped => {
                self.inject_guest_trap(access.fault_cause(), trap.epc, va);
                ExitCause::Shadow
            }
            PageClass::EmulatedMmio => {
                self.mstats.exits_mmio += 1;
                self.emulate_mmio(trap, va, gpa, access);
                ExitCause::Mmio
            }
            PageClass::PassthroughMmio => {
                if self.progress.no_progress(&trap) {
                    self.stub_stop(StopReason::Fault {
                        pc: trap.epc,
                        cause: trap.cause.code(),
                    });
                    return ExitCause::Debug;
                }
                self.mstats.exits_shadow += 1;
                self.consume_monitor(costs::SHADOW_FILL);
                let key = self.shadow_key();
                self.shadow.map(
                    &mut self.machine.mem,
                    key,
                    vmode,
                    va & !PAGE_MASK,
                    gpa & !PAGE_MASK,
                    pte::V | pte::R | pte::W | pte::U | pte::A | pte::D,
                );
                ExitCause::Shadow
            }
            PageClass::GuestRam => {
                if self.progress.no_progress(&trap) {
                    self.stub_stop(StopReason::Fault {
                        pc: trap.epc,
                        cause: trap.cause.code(),
                    });
                    return ExitCause::Debug;
                }
                // Watchpoints first: accesses into a watched page never get
                // a shadow mapping in the watched direction, so every one
                // of them faults into the monitor for inspection.
                let is_store = access == Access::Store;
                let watched_page = if is_store {
                    self.stub.watch_overlaps_page_write(va)
                } else {
                    access == Access::Load && self.stub.watch_overlaps_page_read(va)
                };
                if watched_page {
                    if let Some(w) = self.stub.watch_hit(va, 4, is_store) {
                        let cond = w.cond.clone();
                        let stop = match cond {
                            None => true,
                            // Unevaluable conditions stop too — fail safe.
                            Some(c) => c.eval(self).is_none_or(|v| v != 0),
                        };
                        if stop {
                            self.mstats.exits_debug += 1;
                            self.stub_stop(StopReason::Watchpoint {
                                pc: trap.epc,
                                addr: va,
                            });
                            return ExitCause::Debug;
                        }
                    }
                    // Unwatched (or condition-false) access that merely
                    // shares the page: the monitor completes it on the
                    // guest's behalf.
                    if is_store {
                        self.emulate_guest_store(trap, gpa);
                    } else {
                        self.emulate_guest_load(trap, gpa);
                    }
                    return ExitCause::Debug;
                }
                self.mstats.exits_shadow += 1;
                self.consume_monitor(costs::SHADOW_FILL);
                let mut flags = pte::V | pte::U | pte::A | pte::D;
                if gflags & pte::R != 0 && !self.stub.watch_overlaps_page_read(va) {
                    flags |= pte::R;
                }
                if gflags & pte::X != 0 {
                    flags |= pte::X;
                }
                if gperm_w && !self.stub.watch_overlaps_page_write(va) {
                    flags |= pte::W;
                }
                let key = self.shadow_key();
                self.shadow.map(
                    &mut self.machine.mem,
                    key,
                    vmode,
                    va & !PAGE_MASK,
                    gpa & !PAGE_MASK,
                    flags,
                );
                ExitCause::Shadow
            }
        }
    }

    /// Decodes and completes the guest's faulting load/store against the
    /// virtual chipset ("partial hardware emulation").
    fn emulate_mmio(&mut self, trap: Trap, va: u32, gpa: u32, access: Access) {
        self.consume_monitor(costs::EMUL_MMIO);
        let Some(instr) = self.fetch_guest_instr(trap.epc) else {
            self.inject_guest_trap(Cause::InstrPageFault, trap.epc, trap.epc);
            return;
        };
        let page = gpa & !(map::DEV_PAGE - 1);
        let offset = gpa & (map::DEV_PAGE - 1);
        match (instr, access) {
            (
                Instr::Load {
                    kind: LoadKind::W,
                    rd,
                    ..
                },
                Access::Load,
            ) => {
                let val = if page == map::PIC_BASE && offset >= smp::reg::SEND {
                    self.ipi_mmio_read(offset)
                } else {
                    self.chipset.mmio_read(&mut self.machine, page, offset)
                };
                self.machine.cpu.set_reg(rd, val);
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
                self.machine.note_logpoints(trap.epc);
            }
            (
                Instr::Store {
                    kind: StoreKind::W,
                    rs2,
                    ..
                },
                Access::Store,
            ) => {
                let val = self.machine.cpu.reg(rs2);
                if page == map::PIC_BASE && offset == hx_machine::pic::reg::EOI {
                    // The guest is retiring a virtual interrupt: close the
                    // profiler's entry→EOI latency window and the causal
                    // ISR-service flow. The monitor's own retirement of the
                    // *real* PIC goes through the device directly, so this
                    // is the only EOI the causal layer sees.
                    let now = self.machine.now();
                    self.machine.obs.prof_irq_eoi(now);
                    self.machine.obs.eoi(now);
                }
                if page == map::PIC_BASE && offset >= smp::reg::SEND {
                    self.ipi_mmio_write(offset, val);
                } else {
                    self.chipset
                        .mmio_write(&mut self.machine, page, offset, val);
                }
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
                self.machine.note_logpoints(trap.epc);
            }
            _ => {
                // Sub-word or executable access to a device page: reflect
                // as an access fault, like real hardware would.
                self.inject_guest_trap(access.fault_cause(), trap.epc, va);
            }
        }
        // Attribute the emulation's host time to the device itself; the
        // trailing `record_exit(Mmio)` then covers only exit bookkeeping.
        if let Some(dev) = map::dev_of(gpa) {
            self.machine.obs.host_mark(HostPhase::Device(dev));
        }
    }

    /// Emulates a guest read of the IPI registers (the block above the
    /// 8259 registers on the PIC page). The monitor answers `CORE_ID` and
    /// `NUM_CORES` itself and reads `ENTRY` through the machine, so the
    /// deprivileged guest sees exactly what a raw guest would.
    fn ipi_mmio_read(&mut self, offset: u32) -> u32 {
        match offset {
            smp::reg::ENTRY => self.machine.ipi_entry(),
            smp::reg::CORE_ID => self.cur_core as u32,
            smp::reg::NUM_CORES => self.machine.num_cores() as u32,
            _ => {
                self.chipset.bad_accesses += 1;
                0
            }
        }
    }

    /// Emulates a guest write to the IPI registers: sends route through the
    /// machine's own delivery path so virtual and raw IPI timing agree.
    fn ipi_mmio_write(&mut self, offset: u32, val: u32) {
        match offset {
            smp::reg::SEND => {
                let target = (val & 0xff) as u8;
                let line = ((val >> 8) & 0xff) as u8;
                if !self.machine.ipi_send(target, line) {
                    self.chipset.bad_accesses += 1;
                }
            }
            smp::reg::ENTRY => self.machine.set_ipi_entry(val),
            _ => self.chipset.bad_accesses += 1,
        }
    }

    /// Completes one guest store that faulted only because a watchpoint
    /// shares its page.
    fn emulate_guest_store(&mut self, trap: Trap, gpa: u32) {
        self.consume_monitor(costs::EMUL_ACCESS);
        self.mstats.emulated_stores += 1;
        let Some(instr) = self.fetch_guest_instr(trap.epc) else {
            self.inject_guest_trap(Cause::InstrPageFault, trap.epc, trap.epc);
            return;
        };
        if let Instr::Store { kind, rs2, .. } = instr {
            let size = match kind {
                StoreKind::B => MemSize::Byte,
                StoreKind::H => MemSize::Half,
                StoreKind::W => MemSize::Word,
            };
            let val = self.machine.cpu.reg(rs2);
            if self.machine.mem.write(gpa, val, size).is_ok() {
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
                // The instruction retired by emulation — the engine's
                // boundary hook never saw it.
                self.machine.note_logpoints(trap.epc);
                return;
            }
        }
        self.inject_guest_trap(Cause::StoreAccessFault, trap.epc, trap.tval);
    }

    /// Completes one guest load that faulted only because a read
    /// watchpoint shares its page.
    fn emulate_guest_load(&mut self, trap: Trap, gpa: u32) {
        self.consume_monitor(costs::EMUL_ACCESS);
        self.mstats.emulated_loads += 1;
        let Some(instr) = self.fetch_guest_instr(trap.epc) else {
            self.inject_guest_trap(Cause::InstrPageFault, trap.epc, trap.epc);
            return;
        };
        if let Instr::Load { kind, rd, .. } = instr {
            let size = match kind {
                LoadKind::B | LoadKind::Bu => MemSize::Byte,
                LoadKind::H | LoadKind::Hu => MemSize::Half,
                LoadKind::W => MemSize::Word,
            };
            if let Ok(raw) = self.machine.mem.read(gpa, size) {
                // Same extension rules as the CPU's own load path.
                let val = match kind {
                    LoadKind::B => raw as u8 as i8 as i32 as u32,
                    LoadKind::Bu => raw & 0xff,
                    LoadKind::H => raw as u16 as i16 as i32 as u32,
                    LoadKind::Hu => raw & 0xffff,
                    LoadKind::W => raw,
                };
                self.machine.cpu.set_reg(rd, val);
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
                self.machine.note_logpoints(trap.epc);
                return;
            }
        }
        self.inject_guest_trap(Cause::LoadAccessFault, trap.epc, trap.tval);
    }

    /// Fetches the instruction word at a guest virtual PC.
    fn fetch_guest_instr(&mut self, pc: u32) -> Option<Instr> {
        let pa = self.debug_translate(pc)?;
        let word = self.machine.mem.read(pa, MemSize::Word).ok()?;
        Instr::decode(word).ok()
    }

    // ------------------------------------------------------------------
    // Real interrupt handling
    // ------------------------------------------------------------------

    fn handle_real_irq(&mut self, irq: u8) {
        // The monitor owns the real PIC: retire the interrupt immediately.
        self.machine.pic.eoi(irq);
        self.consume_monitor(costs::EXIT_BASE + costs::REFLECT_IRQ);
        self.record_exit(ExitCause::IrqReflect, costs::EXIT_BASE + costs::REFLECT_IRQ);
        self.mstats.exits_irq_reflect += 1;
        if irq == map::irq::UART {
            // Host debugger traffic — the monitor's own business.
            self.service_uart();
        } else {
            // Timer and passthrough-device interrupts belong to the guest:
            // latch them in the virtual PIC.
            self.chipset.vpic.assert_irq(irq);
        }
        self.maybe_inject_irq();
    }

    // ------------------------------------------------------------------
    // Debug stub behaviour
    // ------------------------------------------------------------------

    fn stub_stop(&mut self, reason: StopReason) {
        // A stop can originate outside the exit path (break-in, reset);
        // make sure the stop report names the core actually parked.
        self.sync_core();
        // Organic stops become reverse-continue targets; time-travel
        // landings do not (they are already the result of one).
        if !matches!(reason, StopReason::TimeTravel { .. }) {
            let now = self.machine.now();
            if let Some(fr) = &mut self.flight {
                fr.note_stop(now);
            }
        }
        self.state = RunState::Stopped;
        // Hold the fault campaign while parked: injections model faults of
        // a running guest, and firing one into a halted machine would
        // corrupt the state the debugger is inspecting.
        self.machine.pause_faults(true);
        self.stub.stopped = true;
        self.stub.last_stop = Some(reason);
        self.stub.step_intent = None;
        // Disarm the hardware single-step flag while stopped.
        let s = Status(self.machine.cpu.read_csr(Csr::Status));
        self.machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::TF, false).0);
        // `;c:` appears only for nonzero cores, so single-core stop packets
        // are byte-identical to the pre-SMP wire format.
        let core = self.cur_core as u8;
        self.send_packet(&reason.format_on(core));
    }

    fn send_packet(&mut self, payload: &str) {
        let bytes = wire::encode_packet(payload);
        self.stub.stats.bytes_out += bytes.len() as u64;
        self.consume_monitor(costs::STUB_BYTE * bytes.len() as u64);
        self.machine.uart.push_tx(&bytes);
        // Keep the packet until the host ACKs it, so a NAK can be answered
        // by retransmission (a lossy line must not wedge the session).
        self.stub.last_tx = Some(bytes);
        self.stub.resends = 0;
    }

    /// Retransmits the unacknowledged packet after a host NAK, bounded by
    /// [`Stub::RESEND_LIMIT`].
    fn resend_packet(&mut self) {
        let Some(bytes) = self.stub.last_tx.clone() else {
            return;
        };
        if self.stub.resends >= Stub::RESEND_LIMIT {
            self.stub.last_tx = None;
            return;
        }
        self.stub.resends += 1;
        self.stub.stats.retransmits += 1;
        self.stub.stats.bytes_out += bytes.len() as u64;
        self.consume_monitor(costs::STUB_BYTE * bytes.len() as u64);
        self.machine.uart.push_tx(&bytes);
    }

    fn send_reply(&mut self, reply: &Reply) {
        self.send_packet(&reply.format());
    }

    /// Drains host bytes from the UART and executes any complete commands.
    fn service_uart(&mut self) {
        let mut bytes = Vec::new();
        while let Some(b) = self.machine.uart.pop_rx() {
            bytes.push(b);
        }
        if bytes.is_empty() {
            return;
        }
        // Stub servicing is host work after (possibly deferred) guest
        // execution; close the guest window before attributing it.
        self.machine.obs.host_mark(HostPhase::GuestExec);
        self.stub.stats.bytes_in += bytes.len() as u64;
        self.consume_monitor(costs::STUB_BYTE * bytes.len() as u64);
        self.stub.parser.push(&bytes);
        while let Some(event) = self.stub.parser.next_event() {
            match event {
                WireEvent::BreakIn => {
                    self.stub.stats.break_ins += 1;
                    self.mstats.exits_debug += 1;
                    let monitor_before = self.stats.monitor;
                    let pc = self.machine.cpu.pc();
                    self.stub_stop(StopReason::Halted { pc });
                    // Saturating: a time-travel command may have rewound
                    // `stats` to before this exit began.
                    let delta = self.stats.monitor.saturating_sub(monitor_before);
                    self.record_exit(ExitCause::Debug, delta);
                }
                WireEvent::Packet(p) => {
                    self.machine.uart.push_tx(&[wire::ACK]);
                    let monitor_before = self.stats.monitor;
                    self.consume_monitor(costs::STUB_COMMAND);
                    self.stub.stats.commands += 1;
                    {
                        let now = self.machine.now();
                        let code = p.as_bytes().first().copied().unwrap_or(0);
                        self.machine.obs.debug_command(now, code);
                    }
                    let reply = match Command::parse(&p) {
                        Some(cmd) => self.exec_command(cmd),
                        None => Reply::Error(err::PARSE),
                    };
                    self.send_reply(&reply);
                    // Saturating: a time-travel command may have rewound
                    // `stats` to before this exit began.
                    let delta = self.stats.monitor.saturating_sub(monitor_before);
                    self.record_exit(ExitCause::Debug, delta);
                }
                WireEvent::Corrupt => {
                    self.machine.uart.push_tx(&[wire::NAK]);
                }
                WireEvent::Ack => {
                    // Delivery confirmed: drop the retransmission cache.
                    self.stub.last_tx = None;
                    self.stub.resends = 0;
                }
                WireEvent::Nak => self.resend_packet(),
            }
        }
        // Whatever the per-packet `record_exit(Debug)` marks did not claim
        // (byte draining, parsing, ACK/NAK handling) is debug-link I/O.
        self.machine.obs.host_mark(HostPhase::DebugLink);
    }

    fn exec_command(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::Halt => {
                let pc = self.machine.cpu.pc();
                self.stub_stop(StopReason::Halted { pc });
                Reply::Ok
            }
            Command::QueryStop => match self.stub.last_stop {
                Some(r) if self.stub.stopped => Reply::Stopped(r),
                _ => Reply::Error(err::NOT_STOPPED),
            },
            Command::SetThread { core } => {
                if (core as usize) < self.machine.num_cores() {
                    self.stub.sel_core = core;
                    Reply::Ok
                } else {
                    Reply::Error(err::CORE)
                }
            }
            Command::ThreadAlive { core } => {
                if (core as usize) < self.machine.num_cores()
                    && self.machine.core_started(core as usize)
                {
                    Reply::Ok
                } else {
                    Reply::Error(err::CORE)
                }
            }
            Command::ReadRegisters => {
                let cpu = self.machine.core(self.stub.sel_core as usize);
                let mut bytes = Vec::with_capacity(33 * 4);
                for r in cpu.regs() {
                    bytes.extend_from_slice(&r.to_le_bytes());
                }
                bytes.extend_from_slice(&cpu.pc().to_le_bytes());
                Reply::Hex(bytes)
            }
            Command::WriteRegister { index, value } => {
                let sel = self.stub.sel_core as usize;
                if index < 32 {
                    let reg = hx_cpu::Reg::new(index).unwrap();
                    self.machine.core_mut(sel).set_reg(reg, value);
                    Reply::Ok
                } else if index as u32 == rdbg::msg::REG_PC as u32 {
                    self.machine.core_mut(sel).set_pc(value);
                    Reply::Ok
                } else {
                    Reply::Error(err::REG)
                }
            }
            Command::ReadMemory { addr, len } => {
                let mut out = Vec::with_capacity(len as usize);
                for i in 0..len {
                    let va = addr.wrapping_add(i);
                    let Some(pa) = self.sel_translate(va) else {
                        return Reply::Error(err::MEM);
                    };
                    match self.machine.mem.read(pa, MemSize::Byte) {
                        Ok(b) => out.push(b as u8),
                        Err(_) => return Reply::Error(err::MEM),
                    }
                }
                // Mask planted breakpoints: the host sees the original
                // instructions, not the stub's `ebreak` patches.
                for (&bp, &orig) in &self.stub.breakpoints {
                    for k in 0..4u32 {
                        let va = bp.wrapping_add(k);
                        let off = va.wrapping_sub(addr);
                        if off < len {
                            out[off as usize] = orig.to_le_bytes()[k as usize];
                        }
                    }
                }
                Reply::Hex(out)
            }
            Command::WriteMemory { addr, data } => {
                for (i, &b) in data.iter().enumerate() {
                    let va = addr.wrapping_add(i as u32);
                    let Some(pa) = self.sel_translate(va) else {
                        return Reply::Error(err::MEM);
                    };
                    if self.machine.mem.write(pa, b as u32, MemSize::Byte).is_err() {
                        return Reply::Error(err::MEM);
                    }
                }
                Reply::Ok
            }
            Command::SetBreakpoint { addr } => {
                if self.stub.breakpoints.contains_key(&addr) {
                    return Reply::Error(err::BP);
                }
                let Some(pa) = self.sel_translate(addr) else {
                    return Reply::Error(err::MEM);
                };
                let Ok(orig) = self.machine.mem.read(pa, MemSize::Word) else {
                    return Reply::Error(err::MEM);
                };
                if self
                    .machine
                    .mem
                    .write(pa, EBREAK_WORD, MemSize::Word)
                    .is_err()
                {
                    return Reply::Error(err::MEM);
                }
                self.machine.cpu.tlb_flush();
                self.stub.breakpoints.insert(addr, orig);
                Reply::Ok
            }
            Command::ClearBreakpoint { addr } => {
                let Some(orig) = self.stub.breakpoints.remove(&addr) else {
                    return Reply::Error(err::BP);
                };
                self.stub.bp_conds.remove(&addr);
                if let Some(pa) = self.debug_translate(addr) {
                    let _ = self.machine.mem.write(pa, orig, MemSize::Word);
                }
                Reply::Ok
            }
            Command::SetWatchpoint { addr, len, kind } => {
                if len == 0 {
                    return Reply::Error(err::PARSE);
                }
                self.stub.watchpoints.push(Watchpoint {
                    addr,
                    len,
                    kind,
                    cond: None,
                });
                // Drop mappings so watched pages re-fault.
                self.shadow.flush_all(&mut self.machine.mem);
                self.activate_shadow();
                self.machine.cpu.tlb_flush();
                Reply::Ok
            }
            Command::ClearWatchpoint { addr } => {
                let before = self.stub.watchpoints.len();
                self.stub.watchpoints.retain(|w| w.addr != addr);
                if self.stub.watchpoints.len() == before {
                    return Reply::Error(err::BP);
                }
                self.shadow.flush_all(&mut self.machine.mem);
                self.activate_shadow();
                self.machine.cpu.tlb_flush();
                Reply::Ok
            }
            Command::SetBreakCondition { addr, expr } => {
                if !self.stub.breakpoints.contains_key(&addr) {
                    return Reply::Error(err::BP);
                }
                match Expr::parse(&expr) {
                    Ok(e) => {
                        self.stub.bp_conds.insert(addr, e);
                        Reply::Ok
                    }
                    Err(_) => Reply::Error(err::QUERY),
                }
            }
            Command::SetWatchCondition { addr, expr } => {
                let Ok(e) = Expr::parse(&expr) else {
                    return Reply::Error(err::QUERY);
                };
                let mut any = false;
                for w in &mut self.stub.watchpoints {
                    if w.addr == addr {
                        w.cond = Some(e.clone());
                        any = true;
                    }
                }
                if any {
                    Reply::Ok
                } else {
                    Reply::Error(err::BP)
                }
            }
            Command::SetLogpoint { addr, label, expr } => {
                let cond = if expr.is_empty() {
                    None
                } else {
                    match Expr::parse(&expr) {
                        Ok(e) => Some(e),
                        Err(_) => return Reply::Error(err::QUERY),
                    }
                };
                self.machine.add_logpoint(addr, &label, cond);
                Reply::Ok
            }
            Command::ClearLogpoint { addr } => {
                if self.machine.clear_logpoint(addr) {
                    Reply::Ok
                } else {
                    Reply::Error(err::BP)
                }
            }
            Command::QueryFirst { expr } => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                match Expr::parse(&expr) {
                    Ok(e) => self.query_first(&e),
                    Err(_) => Reply::Error(err::QUERY),
                }
            }
            Command::Step => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                self.arm_resume(StepIntent::Step);
                Reply::Ok
            }
            Command::Continue => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                let pc = self.machine.cpu.pc();
                if self.stub.breakpoints.contains_key(&pc) {
                    // Step over the breakpoint we are parked on, then run.
                    self.arm_resume(StepIntent::Resume);
                } else {
                    self.stub.stopped = false;
                    self.state = RunState::Running;
                    self.machine.pause_faults(false);
                    self.sync_tf();
                }
                Reply::Ok
            }
            Command::Reset => {
                // Power-on SMP state first: core 0 back in the seat,
                // secondaries stopped until their next startup IPI.
                self.machine.smp_reset();
                self.cur_core = 0;
                let mut cpu = hx_cpu::Cpu::new();
                cpu.set_mode(Mode::User);
                cpu.set_pc(self.entry);
                cpu.write_csr(Csr::Status, Status::IE);
                self.machine.cpu = cpu;
                self.vcpu = VCpu::new();
                for v in &mut self.vcpus {
                    *v = VCpu::new();
                }
                for m in &mut self.vipi {
                    *m = 0;
                }
                self.chipset = VChipset::new();
                self.shadow.flush_all(&mut self.machine.mem);
                self.activate_shadow();
                let root = self.machine.cpu.read_csr(Csr::Ptbr);
                for i in 1..self.machine.num_cores() {
                    let mut c = hx_cpu::Cpu::new();
                    c.set_mode(Mode::User);
                    c.write_csr(Csr::Status, Status::IE);
                    c.write_csr(Csr::Ptbr, root);
                    *self.machine.core_mut(i) = c;
                }
                self.stub.lifted_bp = None;
                self.stub.step_intent = None;
                self.stub_stop(StopReason::Halted { pc: self.entry });
                Reply::Ok
            }
            Command::ReverseStep => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                let Some(fr) = self.flight.as_deref() else {
                    return Reply::Error(err::RECORDER);
                };
                self.seek_to(fr.last_instr_at)
            }
            Command::ReverseContinue => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                let Some(fr) = self.flight.as_deref() else {
                    return Reply::Error(err::RECORDER);
                };
                // Anchor on the cycle of the stop we are parked at (`now`
                // keeps advancing while stopped), then rewind to the
                // latest stop strictly before it.
                let anchor = match self.stub.last_stop {
                    Some(StopReason::TimeTravel { cycle, .. }) => cycle,
                    _ => fr
                        .stop_history
                        .last()
                        .copied()
                        .unwrap_or_else(|| self.machine.now()),
                };
                let target = fr
                    .stop_history
                    .iter()
                    .copied()
                    .filter(|&c| c < anchor)
                    .max();
                match target {
                    Some(t) => self.seek_to(t),
                    None => Reply::Error(err::RECORDER),
                }
            }
            Command::Seek { cycle } => {
                if !self.stub.stopped {
                    return Reply::Error(err::NOT_STOPPED);
                }
                self.seek_to(cycle)
            }
            Command::QueryStats => {
                // Answered whether or not the guest is stopped — the whole
                // point is sampling the monitor live, without a halt.
                let decode = self.machine.cpu.decode_stats();
                let faults = self
                    .machine
                    .fault_stats()
                    .map(|f| f.injected.to_vec())
                    .unwrap_or_default();
                let fault_blocked = self.machine.fault_stats().map_or(0, |f| f.blocked);
                let n = self.machine.num_cores();
                Reply::Stats(StatsSample {
                    now: self.machine.now(),
                    guest: self.stats.guest,
                    monitor: self.stats.monitor,
                    host: self.stats.host_model,
                    idle: self.stats.idle,
                    decode_hits: decode.hits,
                    decode_misses: decode.misses,
                    fast_fetches: decode.fast_fetches,
                    decode_invalidations: decode.invalidations,
                    exits: self.machine.obs.exits.counts().to_vec(),
                    faults,
                    fault_blocked,
                    cores: n as u64,
                    core_instret: (0..n).map(|i| self.machine.core(i).instret()).collect(),
                    core_exits: (0..n)
                        .map(|i| self.machine.obs.core_exit_count(i))
                        .collect(),
                })
            }
            Command::QueryProf { max } => {
                // Like `qStats`: answered live, without stopping the guest.
                let Some(prof) = self.machine.obs.prof() else {
                    return Reply::Error(err::PROFILER);
                };
                Reply::Prof(ProfSample {
                    now: self.machine.now(),
                    interval: prof.interval(),
                    total_cycles: prof.total_cycles(),
                    total_samples: prof.total_samples(),
                    top: prof
                        .top(max as usize)
                        .into_iter()
                        .map(|(name, cycles, samples)| (name.to_string(), cycles, samples))
                        .collect(),
                })
            }
            Command::QueryFlow => {
                // Like `qStats`: answered live, without stopping the guest.
                // Every value is simulation-deterministic, so the reply's
                // byte cost is a pure function of the run.
                let Some(c) = self.machine.obs.causal() else {
                    return Reply::Error(err::CAUSAL);
                };
                Reply::Flow(FlowSample {
                    now: self.machine.now(),
                    completed: c.completed(),
                    dropped: c.dropped_flows(),
                    orphan_ends: c.orphan_ends(),
                    instants: c.instants(),
                    classes: hx_obs::FlowClass::ALL
                        .iter()
                        .map(|&class| {
                            let h = c.hist(class);
                            (h.count(), h.p50(), h.p99(), h.max())
                        })
                        .collect(),
                })
            }
            Command::QueryMetrics => {
                // Like `qStats`: answered live, without stopping the guest.
                // The sample's wire encoding is fixed-width, so the reply's
                // simulated byte cost never depends on the host-clock
                // values it carries — replay stays byte-identical.
                let Some(att) = self.machine.obs.host_attribution() else {
                    return Reply::Error(err::METRICS);
                };
                let mut phase_ns = [0u64; rdbg::msg::METRICS_PHASES];
                for (i, ns) in att.phase_ns.iter().enumerate() {
                    phase_ns[i] = *ns;
                }
                Reply::Metrics(MetricsSample {
                    now: self.machine.now(),
                    wall_ns: att.wall_ns,
                    marks: att.marks,
                    phase_ns,
                })
            }
        }
    }

    /// Does the condition attached to the breakpoint at `pc` hold?
    /// Unconditional breakpoints and unevaluable conditions stop — fail
    /// safe.
    fn bp_condition_holds(&mut self, pc: u32) -> bool {
        let Some(cond) = self.stub.bp_conds.get(&pc).cloned() else {
            return true;
        };
        cond.eval(self).is_none_or(|v| v != 0)
    }

    /// Evaluates a query predicate against the live machine state, in the
    /// same physical-address view the checkpoint scan uses.
    fn eval_pred(&mut self, expr: &Expr) -> bool {
        let pc = self.machine.cpu.pc();
        let now = self.machine.now();
        let mut ctx = SliceCtx::new(
            self.machine.mem.as_bytes(),
            self.machine.cpu.regs(),
            pc,
            now,
        );
        expr.eval(&mut ctx).is_some_and(|v| v != 0)
    }

    /// `Qq`: finds the earliest recorded instruction boundary at which
    /// `expr` evaluates nonzero and parks the guest there by time travel.
    ///
    /// The earliest checkpoint is restored and history re-executed one
    /// instruction at a time, evaluating the predicate at every boundary,
    /// until it holds. A checkpoint scan cannot prune windows here: a
    /// predicate over shared state can flicker (a cross-core counter
    /// deficit is masked whenever a sibling core sits between two of its
    /// own updates), so `expr` being false at both checkpoints bracketing
    /// a window says nothing about the boundaries in between. Exact
    /// first-hit semantics therefore costs a replay from the start of the
    /// recording. A miss replays back to the original cycle (state
    /// byte-identical) and reports `found = 0`.
    fn query_first(&mut self, expr: &Expr) -> Reply {
        let Some(fr) = self.flight.as_deref() else {
            return Reply::Error(err::RECORDER);
        };
        if fr.replaying {
            return Reply::Error(err::RECORDER);
        }
        let Some(journal) = self.machine.obs.journal().cloned() else {
            return Reply::Error(err::RECORDER);
        };
        let original = self.machine.now();
        let fr = self.flight.as_deref().expect("checked above");
        let restore_at = fr.checkpoints.iter().next().map_or(original, |c| c.at);

        let fr = self.flight.as_mut().expect("checked above");
        let Some(cp) = fr.checkpoints.nearest_at_or_before(restore_at) else {
            return Reply::Error(err::RECORDER);
        };
        let cp_at = cp.at;
        let snap = cp.state.clone();
        fr.checkpoints.truncate_after(cp_at);
        fr.stop_history.retain(|&c| c <= cp_at);
        self.restore(snap);
        self.flight.as_mut().expect("checked above").replaying = true;
        let mut cursor = ReplayCursor::new(&journal);
        let done = self.machine.obs.journal().map_or(0, |j| j.inputs.len());
        cursor.skip_first(done);
        let mut found = None;
        loop {
            let now = self.machine.now();
            if self.eval_pred(expr) {
                found = Some(now);
                break;
            }
            if now >= original {
                break;
            }
            while let Some(rec) = cursor.pop_due(now) {
                match rec.input {
                    JournalInput::UartRx(bytes) => self.machine.uart_input(&bytes),
                    JournalInput::NicRx(frame) => self.inject_rx_frame(&frame),
                }
            }
            if self.step() == PlatformStep::Stuck {
                break;
            }
        }
        // Stub replies regenerated during the re-run were already delivered
        // on the original timeline; the host must not see them twice.
        let _ = self.machine.uart_output();
        self.flight.as_mut().expect("checked above").replaying = false;
        let pc = self.machine.cpu.pc();
        let cycle = self.machine.now();
        self.stub_stop(StopReason::TimeTravel { pc, cycle });
        match found {
            Some(c) => Reply::Query {
                found: true,
                cycle: c,
            },
            None => Reply::Query {
                found: false,
                cycle,
            },
        }
    }

    /// Arms a single step (possibly lifting the breakpoint under the PC)
    /// and resumes the guest.
    fn arm_resume(&mut self, intent: StepIntent) {
        let pc = self.machine.cpu.pc();
        if self.stub.breakpoints.contains_key(&pc) {
            if let Some(pa) = self.debug_translate(pc) {
                let orig = self.stub.breakpoints[&pc];
                let _ = self.machine.mem.write(pa, orig, MemSize::Word);
                self.stub.lifted_bp = Some(pc);
            }
        }
        self.stub.step_intent = Some(intent);
        self.stub.stopped = false;
        self.state = RunState::Running;
        self.machine.pause_faults(false);
        self.sync_tf();
    }

    /// Translates a guest virtual address for debugger access: guest page
    /// tables are honoured but permission bits are not (the debugger may
    /// read execute-only pages). Only guest RAM is reachable. Uses the
    /// *active* core's address space (breakpoint replants, conditions).
    fn debug_translate(&mut self, va: u32) -> Option<u32> {
        let root = self
            .vcpu
            .paging_enabled()
            .then(|| self.vcpu.page_table_root());
        self.translate_for_debug(root, va)
    }

    /// [`Self::debug_translate`] through the `Hg`-selected core's address
    /// space — what the host's register/memory commands look through.
    fn sel_translate(&mut self, va: u32) -> Option<u32> {
        let v = self.sel_vcpu();
        let root = v.paging_enabled().then(|| v.page_table_root());
        self.translate_for_debug(root, va)
    }

    /// The `Hg`-selected core's virtual CPU.
    fn sel_vcpu(&self) -> &VCpu {
        let sel = self.stub.sel_core as usize;
        if sel == self.cur_core {
            &self.vcpu
        } else {
            &self.vcpus[sel]
        }
    }

    fn translate_for_debug(&mut self, paging_root: Option<u32>, va: u32) -> Option<u32> {
        let gpa = if let Some(root) = paging_root {
            let l1_addr = root + hx_cpu::mmu::l1_index(va) * 4;
            if l1_addr + 4 > self.monitor_base {
                return None;
            }
            let l1e = self.machine.mem.read(l1_addr, MemSize::Word).ok()?;
            if l1e & pte::V == 0 || l1e & (pte::R | pte::W | pte::X) != 0 {
                return None;
            }
            let l2_addr = (l1e & pte::PPN_MASK) + hx_cpu::mmu::l2_index(va) * 4;
            if l2_addr + 4 > self.monitor_base {
                return None;
            }
            let leaf = self.machine.mem.read(l2_addr, MemSize::Word).ok()?;
            if leaf & pte::V == 0 {
                return None;
            }
            (leaf & pte::PPN_MASK) | (va & PAGE_MASK)
        } else {
            va
        };
        (gpa < self.monitor_base).then_some(gpa)
    }

    // ------------------------------------------------------------------
    // Run states
    // ------------------------------------------------------------------

    fn step_impl(&mut self, batch: bool) -> PlatformStep {
        self.maybe_checkpoint();
        match self.state {
            RunState::Running => self.guest_step(batch),
            RunState::GuestIdle => self.guest_idle_step(),
            RunState::Stopped => self.stopped_step(),
        }
    }

    fn stopped_step(&mut self) -> PlatformStep {
        // While stopped the monitor polls its UART; device events keep
        // firing (real time does not stop for the debugger).
        if self.machine.uart.rx_pending() == 0 {
            if self.machine.pending_events() == 0 {
                // Nothing will happen until the host sends bytes; advance a
                // polling quantum so the host's pump loop sees progress.
                self.machine.consume(costs::STUB_POLL);
                self.charge(TimeBucket::Idle, costs::STUB_POLL);
            } else {
                self.machine.consume(costs::STUB_POLL);
                self.charge(TimeBucket::Idle, costs::STUB_POLL);
            }
            return PlatformStep::Running;
        }
        self.service_uart();
        PlatformStep::Running
    }
}

/// The live-guest evaluation context for breakpoint and watchpoint
/// conditions: registers and PC come from the real CPU, memory operands go
/// through the debugger's address translation (guest page tables honoured,
/// permission bits ignored), so conditions see the same world the host's
/// `m` command shows.
impl hx_query::EvalCtx for LvmmPlatform {
    fn reg(&mut self, idx: u8) -> u32 {
        self.machine
            .cpu
            .regs()
            .get(idx as usize)
            .copied()
            .unwrap_or(0)
    }

    fn pc(&mut self) -> u32 {
        self.machine.cpu.pc()
    }

    fn cycle(&mut self) -> u64 {
        self.machine.now()
    }

    fn load(&mut self, addr: u32, size: u8) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..size as u32 {
            let pa = self.debug_translate(addr.wrapping_add(i))?;
            let b = self.machine.mem.read(pa, MemSize::Byte).ok()?;
            v |= (b & 0xff) << (8 * i);
        }
        Some(v)
    }
}

impl ExitPolicy for LvmmPlatform {
    fn mach(&self) -> &Machine {
        &self.machine
    }

    fn mach_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats_mut(&mut self) -> &mut TimeStats {
        &mut self.stats
    }

    fn handle_trap(&mut self, trap: Trap) {
        self.dispatch_trap(trap);
    }

    fn handle_interrupt(&mut self, irq: u8, _vector: u8) {
        self.sync_core();
        if irq >= smp::IRQ_BASE {
            self.handle_ipi(irq - smp::IRQ_BASE);
        } else {
            self.handle_real_irq(irq);
        }
    }

    /// Remembers the boundary cycle at which the latest guest instruction
    /// started — seeking there lands *before* that instruction executes,
    /// which is what `reverse-step` wants (e.g. parked on the faulting
    /// store, one instant before the damage).
    fn on_instr_boundary(&mut self, at: u64) {
        if let Some(fr) = &mut self.flight {
            fr.last_instr_at = at;
        }
    }
}

impl Platform for LvmmPlatform {
    fn name(&self) -> &'static str {
        "lvmm"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats(&self) -> &TimeStats {
        &self.stats
    }

    fn step(&mut self) -> PlatformStep {
        // The flight recorder needs per-instruction boundaries (its
        // `reverse-step` anchor and checkpoint cadence), and so do the
        // profiler (its PC attribution anchor) and armed logpoints;
        // batching is only enabled when all are off.
        let batch =
            self.flight.is_none() && !self.machine.obs.profiling() && !self.machine.has_logpoints();
        self.step_impl(batch)
    }

    fn step_precise(&mut self) -> PlatformStep {
        self.step_impl(false)
    }
}

/// A [`rdbg::Link`] that connects the host debugger to any platform's UART,
/// running the platform while the debugger waits for replies.
#[derive(Debug)]
pub struct UartLink<P> {
    /// The platform under debug.
    pub platform: P,
    /// Simulation cycles to run per pump.
    pub slice: u64,
}

impl<P: Platform> UartLink<P> {
    /// Wraps a platform with a default pump slice.
    pub fn new(platform: P) -> UartLink<P> {
        UartLink {
            platform,
            slice: 5_000,
        }
    }
}

impl<P: Platform> rdbg::Link for UartLink<P> {
    fn send(&mut self, bytes: &[u8]) {
        self.platform.machine_mut().uart_input(bytes);
    }

    fn pump(&mut self) -> Vec<u8> {
        self.platform.run_for(self.slice);
        self.platform.machine_mut().uart_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    fn boot(src: &str) -> LvmmPlatform {
        let program = hx_asm::assemble(src).expect("guest assembles");
        let mut machine = Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let entry = program.symbols.get("start").unwrap_or(program.base());
        LvmmPlatform::new(machine, entry)
    }

    #[test]
    fn guest_csr_access_is_virtualized() {
        let mut vmm = boot(
            "start:  csrw tvec, 0x2000
                     csrr a0, tvec
             halt:   j halt
            ",
        );
        vmm.run_for(50_000);
        assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R4), 0x2000);
        assert_eq!(vmm.vcpu().tvec, 0x2000);
        // The *real* trap vector never changed.
        assert_eq!(vmm.machine().cpu.read_csr(Csr::Tvec), 0);
        assert!(vmm.monitor_stats().exits_privileged >= 2);
    }

    #[test]
    fn wire_phase_count_matches_host_profiler() {
        // The fixed-width `qMetrics` reply carries exactly one field per
        // host phase; the wire constant must track the profiler's enum.
        assert_eq!(rdbg::msg::METRICS_PHASES, HostPhase::COUNT);
    }

    #[test]
    fn query_metrics_needs_the_host_profiler() {
        let mut vmm = boot("start: j start\n");
        assert_eq!(
            vmm.exec_command(Command::QueryMetrics),
            Reply::Error(err::METRICS),
            "no host profiler enabled => the stable metrics error code"
        );
        assert_eq!(rdbg::err_name(err::METRICS), Some("metrics unavailable"));

        vmm.machine_mut().obs.enable_hostprof();
        vmm.run_for(50_000);
        match vmm.exec_command(Command::QueryMetrics) {
            Reply::Metrics(s) => {
                assert!(s.wall_ns > 0, "wall clock advanced");
                assert!(s.marks > 0, "phase boundaries were marked");
                assert!(s.attributed_ns() <= s.wall_ns);
                // Fixed-width: two samples taken at different host times
                // must serialize to the same number of bytes.
                let again = vmm.exec_command(Command::QueryMetrics);
                assert_eq!(again.format().len(), Reply::Metrics(s).format().len());
            }
            other => panic!("expected a metrics sample, got {other:?}"),
        }
    }

    #[test]
    fn guest_runs_in_hardware_user_mode_but_virtual_supervisor() {
        let vmm = boot("start: j start\n");
        assert_eq!(vmm.machine().cpu.mode(), Mode::User);
        assert_eq!(vmm.vcpu().vmode, Mode::Supervisor);
    }

    #[test]
    fn ecall_from_virtual_kernel_reaches_guest_handler_as_ecalls() {
        let mut vmm = boot(
            "        .org 0x100
             handler:
                     csrr a1, cause
             hh:     j hh
             start:  csrw tvec, handler
                     ecall
             halt:   j halt
            ",
        );
        vmm.run_for(100_000);
        assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R5), Cause::EcallS.code());
        assert_eq!(vmm.vcpu().vmode, Mode::Supervisor);
        assert!(vmm.monitor_stats().faults_injected >= 1);
    }

    #[test]
    fn timer_interrupt_reflected_and_injected() {
        let mut vmm = boot(&format!(
            "        .org 0x100
             handler:
                     addi s0, s0, 1
                     li   k0, {pic:#x}
                     sw   zero, 0xc(k0)      ; EOI virtual irq 0
                     tret
             start:  csrw tvec, handler
                     li   t0, {pit:#x}
                     li   t1, 2000
                     sw   t1, 4(t0)
                     li   t1, 3
                     sw   t1, 0(t0)
                     csrw status, 1
             idle:   wfi
                     j    idle
            ",
            pic = map::PIC_BASE,
            pit = map::PIT_BASE,
        ));
        vmm.run_for(200_000);
        let ticks = vmm.machine().cpu.reg(hx_cpu::Reg::R18);
        assert!(
            ticks >= 3,
            "guest must have handled several virtual timer ticks, got {ticks}"
        );
        let ms = vmm.monitor_stats();
        assert!(ms.irqs_injected >= 3);
        assert!(ms.exits_irq_reflect >= 3);
        assert!(ms.exits_mmio >= 3, "virtual EOIs are emulated MMIO");
        // The virtual wfi idles the machine.
        assert!(vmm.time_stats().idle > 0);
    }

    #[test]
    fn monitor_memory_is_unreachable_from_guest_kernel() {
        let mut vmm = boot(
            "start:  csrw tvec, fault        ; catch our own fault
                     li   t0, 0x600000       ; inside the monitor region (8MB-2MB)
                     li   t1, 0xdeadbeef
                     sw   t1, 0(t0)          ; must NOT reach monitor memory
                     li   s1, 1              ; (skipped: fault taken first)
             halt:   j halt
             fault:  li   s2, 1
             fh:     j fh
            ",
        );
        let monitor_base = vmm.monitor_base();
        let probe = 0x60_0000u32;
        assert!(
            probe >= monitor_base,
            "probe must target the monitor region"
        );
        vmm.run_for(100_000);
        // The guest's fault handler ran instead of the store landing.
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R20),
            1,
            "fault handler (s2) ran"
        );
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R19),
            0,
            "post-store code (s1) skipped"
        );
        assert!(vmm.monitor_stats().protection_violations >= 1);
        // The guest's value never landed in monitor memory (the word there
        // belongs to the shadow pager, not the guest).
        assert_ne!(vmm.machine().mem.word(probe), 0xdead_beef);
    }

    #[test]
    fn three_level_protection_with_guest_paging() {
        // Guest kernel builds page tables: kernel code RWX (no U) mapped at
        // identity, a user page with U. The user task tries to write a
        // kernel page -> guest page fault handled by guest kernel.
        let mut vmm = boot(
            "        .equ PT_ROOT, 0x100000
                     .equ PT_L2,   0x101000
                     .equ USERPG,  0x102000
             start:  csrw tvec, ktrap
                     ; L1[0] -> L2 table
                     li   t0, PT_ROOT
                     li   t1, PT_L2 + 1          ; V
                     sw   t1, 0(t0)
                     ; identity-map first 16 pages RWX kernel-only
                     li   t0, PT_L2
                     li   t1, 0x0000000f          ; V|R|W|X
                     li   t2, 16
             lp:     sw   t1, 0(t0)
                     addi t0, t0, 4
                     li   t3, 0x1000
                     add  t1, t1, t3
                     addi t2, t2, -1
                     bnez t2, lp
                     ; map PT pages + user page
                     li   t0, PT_L2 + 0x400       ; entries for 0x100000..
                     li   t1, PT_ROOT + 0xf       ; V|R|W|X
                     sw   t1, 0(t0)
                     li   t1, PT_L2 + 0xf
                     sw   t1, 4(t0)
                     li   t1, USERPG + 0x1f       ; V|R|W|X|U
                     sw   t1, 8(t0)
                     ; enable guest paging
                     li   t0, PT_ROOT + 1
                     csrw ptbr, t0
                     tlbflush
                     ; write user code: sw t1, 0(zero) then spin
                     li   t0, USERPG
                     li   t1, 0x68000000          ; sw r0, 0(r0): opcode SW=0x1a<<26
                     lui  t1, 0x6800
                     sw   t1, 0(t0)
                     li   t1, 0x0
                     ; enter user mode at USERPG: set vEPC, clear PMODE
                     csrw epc, t0
                     csrw status, 0               ; PMODE=0 -> user
                     tret
             ktrap:  csrr s3, cause               ; guest kernel sees the fault
             done:   j done
            ",
        );
        vmm.run_for(400_000);
        // The user store to VA 0 (kernel page, no U bit) faulted into the
        // guest kernel with a store page fault.
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R21),
            Cause::StorePageFault.code(),
            "vcpu: {:?}, pc={:#x}",
            vmm.vcpu(),
            vmm.machine().cpu.pc()
        );
        assert!(vmm.shadow_stats().fills > 0);
    }

    #[test]
    fn passthrough_disk_io_runs_without_mmio_exits() {
        let mut vmm = boot(&format!(
            "start:  li   t0, {hdc:#x}
                     li   t1, 9
                     sw   t1, 0(t0)
                     li   t1, 1
                     sw   t1, 4(t0)
                     li   t1, 0x9000
                     sw   t1, 8(t0)
                     li   t1, 1
                     sw   t1, 0xc(t0)
             poll:   lw   t2, 0x10(t0)
                     andi t2, t2, 2
                     beqz t2, poll
                     li   s0, 1
             halt:   j halt
            ",
            hdc = map::HDC_BASE
        ));
        vmm.run_for(500_000);
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R18),
            1,
            "transfer completed"
        );
        let mut expect = vec![0u8; 512];
        hx_machine::disk::fill_expected(0, 9, &mut expect);
        assert_eq!(&vmm.machine().mem.as_bytes()[0x9000..0x9200], &expect[..]);
        let ms = vmm.monitor_stats();
        assert_eq!(
            ms.exits_mmio, 0,
            "disk registers are passthrough — no emulation exits"
        );
        // Exactly one shadow fill for the device page (plus code/data pages).
        assert!(ms.exits_shadow >= 1);
    }

    #[test]
    fn time_accounting_is_complete() {
        let mut vmm = boot(
            "start:  csrw tvec, h
                     li t0, 100
             l:      addi t0, t0, -1
                     bnez t0, l
             halt:   j halt
             h:      j h
            ",
        );
        let t0 = vmm.machine().now();
        vmm.run_for(30_000);
        let elapsed = vmm.machine().now() - t0;
        assert_eq!(vmm.time_stats().total(), elapsed);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut vmm = boot(
                "start:  csrw tvec, h
                         li  t0, 500
                 l:      addi t0, t0, -1
                         bnez t0, l
                         ecall
                 h:      csrr a0, cause
                 hh:     j hh
                ",
            );
            vmm.run_for(100_000);
            (
                vmm.machine().now(),
                *vmm.time_stats(),
                vmm.monitor_stats(),
                vmm.machine().cpu.regs().to_vec(),
            )
        };
        assert_eq!(run(), run());
    }
}
