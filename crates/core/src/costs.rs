//! The monitor's cycle-cost model.
//!
//! The paper's monitor is x86 software; ours executes as host Rust at the
//! trap boundary and charges these calibrated costs instead (DESIGN.md §2).
//! Each constant approximates the instruction-path length of the
//! corresponding monitor service on the scaled machine clock. The values
//! matter *relative to each other* and to `hx_cpu::cost` — together they set
//! where the lightweight-monitor curve of Fig. 3.1 sits between real
//! hardware and the hosted full monitor.

/// World switch: guest → monitor trap entry plus monitor → guest resume
/// (register save/restore, mode bookkeeping). Charged on **every** exit.
pub const EXIT_BASE: u64 = 640;

/// Emulating one privileged CSR access against the virtual CPU.
pub const EMUL_CSR: u64 = 150;

/// Emulating a virtual trap return (`tret`), including the shadow-context
/// switch when the virtual mode changes.
pub const EMUL_TRET: u64 = 250;

/// Emulating one MMIO access to a virtual device register (PIC/PIT/UART):
/// instruction decode, effective-address computation, device model call.
pub const EMUL_MMIO: u64 = 350;

/// Reflecting one real device interrupt into the virtual PIC (real EOI +
/// latch), *before* any injection cost.
pub const REFLECT_IRQ: u64 = 300;

/// Injecting one virtual interrupt or exception into the guest (virtual
/// status juggling + shadow switch to the kernel view).
pub const INJECT_TRAP: u64 = 500;

/// Filling one missing shadow page-table entry (guest page-table walk,
/// permission fold, A/D update, shadow write).
pub const SHADOW_FILL: u64 = 450;

/// Tearing down a shadow context after a guest `tlbflush` or page-table
/// switch.
pub const SHADOW_FLUSH: u64 = 600;

/// Emulating a single guest load/store that the monitor completes on the
/// guest's behalf (watchpoint-adjacent stores).
pub const EMUL_ACCESS: u64 = 160;

/// Handling a guest virtual `wfi` (idle hand-off to the platform).
pub const EMUL_WFI: u64 = 150;

/// Per-byte cost of the stub moving debug data over the UART.
pub const STUB_BYTE: u64 = 6;

/// Fixed cost of the stub parsing and executing one debug command.
pub const STUB_COMMAND: u64 = 350;

/// One iteration of the stopped-state UART polling loop.
pub const STUB_POLL: u64 = 120;
