//! The **lightweight virtual machine monitor** — the primary contribution of
//! *"OS Debugging Method Using a Lightweight Virtual Machine Monitor"*
//! (Takeuchi, DATE 2005), reproduced on the HX32 machine model.
//!
//! The monitor sits between the guest OS under debug and the hardware, and
//! does exactly — and *only* — what the paper's Fig. 2.1 shows:
//!
//! * **Remote debugging functions** ([`stub`]): a debug stub living in
//!   monitor memory, speaking the `rdbg` protocol over the UART it owns.
//!   Because the stub and its state are unreachable by the guest, debugging
//!   keeps working no matter how badly the guest misbehaves.
//! * **Partial hardware emulation** ([`chipset`] and the emulation paths in
//!   [`platform`]): only the
//!   interrupt controller, the timer and the CPU resources (status word,
//!   trap vector, page tables) are virtualized. The guest kernel is
//!   **deprivileged to user mode** (ring compression); its privileged
//!   instructions trap and are emulated against a virtual CPU ([`vcpu`]).
//! * **Direct I/O access**: the SCSI-like disk controller and the NIC are
//!   passed straight through — the guest driver touches real (simulated)
//!   registers and devices DMA into guest memory with zero monitor
//!   involvement. This is where the paper's 5.4× advantage over a full
//!   hosted monitor comes from.
//! * **Three-level memory protection** ([`shadow`]): two shadow page tables
//!   per guest address space (kernel view / user view) built on two-level
//!   hardware. Monitor memory is never mapped; kernel pages are absent from
//!   the user view. A wild guest write cannot reach the monitor.
//!
//! The monitor itself executes as host-level Rust at the machine's trap
//! boundary, charging calibrated cycle costs ([`costs`]) for every exit —
//! see `DESIGN.md` §2 for why this substitution preserves the paper's
//! performance structure.
//!
//! # Example
//!
//! Boot a tiny guest under the monitor and observe that a privileged
//! instruction of the deprivileged kernel is emulated, not executed:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hx_machine::{Machine, MachineConfig, Platform};
//! use lvmm::LvmmPlatform;
//!
//! let program = hx_asm::assemble(
//!     "        .org 0x1000
//!      start:  csrw  tvec, zero     ; privileged: traps into the monitor
//!              li    t0, 42
//!      halt:   j     halt
//!     ",
//! )?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load_program(&program);
//! let mut vmm = LvmmPlatform::new(machine, 0x1000);
//! vmm.run_for(20_000);
//! assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R10), 42);
//! assert!(vmm.monitor_stats().exits_privileged > 0);
//! # Ok(())
//! # }
//! ```

pub mod chipset;
pub mod costs;
pub mod platform;
pub mod replay;
pub mod shadow;
pub mod stub;
pub mod vcpu;

pub use platform::{LvmmConfig, LvmmPlatform, LvmmStats, UartLink};
pub use replay::ReplayDriver;
pub use shadow::ShadowPager;
pub use stub::{Stub, Watchpoint};
pub use vcpu::VCpu;

/// Compile-time proof the lightweight monitor (with its flight recorder,
/// shadow pager and stub) stays [`Send`] — the debug farm owns dozens of
/// these behind worker threads.
#[allow(dead_code)]
fn assert_send_types() {
    fn is_send<T: Send>() {}
    is_send::<LvmmPlatform>();
    is_send::<UartLink<LvmmPlatform>>();
}
