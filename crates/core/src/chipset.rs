//! The virtual chipset: the interrupt controller and timer the guest sees.
//!
//! Per the paper, these are the *only* devices the monitor emulates. The
//! virtual interrupt controller is a second [`Hpic`] instance — identical
//! semantics to the real one, so the guest's driver code is oblivious. The
//! virtual timer mirrors guest programming onto the **real** timer (the
//! monitor has no periodic work of its own), and the monitor reflects real
//! timer interrupts back as virtual IRQ 0.
//!
//! Guest accesses to the UART page are absorbed (reads return zero, writes
//! are dropped): the communication device belongs to the monitor — that
//! ownership is precisely why the debug stub survives a crashed guest.

use hx_cpu::MemSize;
use hx_machine::{map, Hpic, Machine};

/// The guest-visible virtual PIC/PIT pair (plus the UART absorber).
#[derive(Debug, Clone)]
pub struct VChipset {
    /// The virtual interrupt controller; the monitor latches reflected
    /// device interrupts here and injects from it.
    pub vpic: Hpic,
    vpit_ctrl: u32,
    vpit_reload: u32,
    /// Guest accesses to the monitor-owned UART that were absorbed.
    pub uart_absorbed: u64,
    /// Guest device-register accesses that were malformed (wrong offset or
    /// width) and read as zero / were dropped.
    pub bad_accesses: u64,
}

impl Default for VChipset {
    fn default() -> Self {
        Self::new()
    }
}

impl VChipset {
    /// Creates the virtual chipset in reset state.
    pub fn new() -> VChipset {
        VChipset {
            vpic: Hpic::new(),
            vpit_ctrl: 0,
            vpit_reload: 0,
            uart_absorbed: 0,
            bad_accesses: 0,
        }
    }

    /// Emulates a guest word read from an emulated device page.
    ///
    /// `page` is the device page base ([`map::PIC_BASE`] / [`map::PIT_BASE`]
    /// / [`map::UART_BASE`]); `offset` is the register offset within it.
    pub fn mmio_read(&mut self, machine: &mut Machine, page: u32, offset: u32) -> u32 {
        match page {
            map::PIC_BASE => self
                .vpic
                .read_reg(offset, MemSize::Word)
                .unwrap_or_else(|_| {
                    self.bad_accesses += 1;
                    0
                }),
            map::PIT_BASE => {
                // Mirror state for CTRL/RELOAD; live count from the real
                // timer the guest is actually driving.
                match offset {
                    hx_machine::pit::reg::CTRL => self.vpit_ctrl,
                    hx_machine::pit::reg::RELOAD => self.vpit_reload,
                    _ => machine
                        .bus_read(map::PIT_BASE + offset, MemSize::Word)
                        .unwrap_or_else(|_| {
                            self.bad_accesses += 1;
                            0
                        }),
                }
            }
            map::UART_BASE => {
                self.uart_absorbed += 1;
                0
            }
            _ => {
                self.bad_accesses += 1;
                0
            }
        }
    }

    /// Emulates a guest word write to an emulated device page.
    pub fn mmio_write(&mut self, machine: &mut Machine, page: u32, offset: u32, val: u32) {
        match page {
            map::PIC_BASE => {
                if self.vpic.write_reg(offset, val, MemSize::Word).is_err() {
                    self.bad_accesses += 1;
                }
            }
            map::PIT_BASE => {
                match offset {
                    hx_machine::pit::reg::CTRL => self.vpit_ctrl = val,
                    hx_machine::pit::reg::RELOAD => self.vpit_reload = val,
                    _ => {}
                }
                // Forward to the real timer: the guest's tick drives the
                // real PIT, whose interrupts the monitor reflects back.
                if machine
                    .bus_write(map::PIT_BASE + offset, val, MemSize::Word)
                    .is_err()
                {
                    self.bad_accesses += 1;
                }
            }
            map::UART_BASE => self.uart_absorbed += 1,
            _ => self.bad_accesses += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn vpic_is_independent_of_real_pic() {
        let mut m = machine();
        let mut c = VChipset::new();
        c.mmio_write(&mut m, map::PIC_BASE, hx_machine::pic::reg::IMR, 0xf0);
        assert_eq!(
            c.mmio_read(&mut m, map::PIC_BASE, hx_machine::pic::reg::IMR),
            0xf0
        );
        assert_eq!(m.pic.imr(), 0, "real PIC mask untouched");
        c.vpic.assert_irq(3);
        assert_eq!(
            c.mmio_read(&mut m, map::PIC_BASE, hx_machine::pic::reg::IRR),
            0b1000
        );
        assert_eq!(m.pic.irr(), 0);
    }

    #[test]
    fn vpit_mirrors_to_real_pit() {
        let mut m = machine();
        let mut c = VChipset::new();
        c.mmio_write(&mut m, map::PIT_BASE, hx_machine::pit::reg::RELOAD, 500);
        c.mmio_write(&mut m, map::PIT_BASE, hx_machine::pit::reg::CTRL, 3);
        assert_eq!(
            c.mmio_read(&mut m, map::PIT_BASE, hx_machine::pit::reg::RELOAD),
            500
        );
        assert_eq!(
            c.mmio_read(&mut m, map::PIT_BASE, hx_machine::pit::reg::CTRL),
            3
        );
        // The real timer was armed by the forwarded write.
        assert!(m.pit.enabled());
        assert_eq!(m.pit.reload(), 500);
        assert!(m.pit.next_due().is_some());
        // Live count reads through.
        let count = c.mmio_read(&mut m, map::PIT_BASE, hx_machine::pit::reg::COUNT);
        assert!(count > 0 && count <= 500);
    }

    #[test]
    fn uart_accesses_absorbed() {
        let mut m = machine();
        let mut c = VChipset::new();
        assert_eq!(c.mmio_read(&mut m, map::UART_BASE, 0), 0);
        c.mmio_write(&mut m, map::UART_BASE, 0, b'!' as u32);
        assert_eq!(c.uart_absorbed, 2);
        assert_eq!(
            m.uart.tx_pending(),
            0,
            "guest bytes must not reach the host"
        );
    }

    #[test]
    fn bad_offsets_counted_not_fatal() {
        let mut m = machine();
        let mut c = VChipset::new();
        assert_eq!(c.mmio_read(&mut m, map::PIC_BASE, 0x40), 0);
        c.mmio_write(&mut m, map::PIC_BASE, 0x00, 1); // IRR is read-only
        assert_eq!(c.bad_accesses, 2);
    }
}
