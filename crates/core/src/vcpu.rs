//! The virtual CPU: the guest's view of the processor's privileged state.
//!
//! Under the lightweight monitor the guest kernel runs deprivileged in
//! hardware user mode; every CSR it touches, every trap it thinks it takes
//! and every `tret` it executes happens against *this* structure instead of
//! the real CPU — the paper's "CPU-resources emulator". The real CSRs stay
//! owned by the monitor (real `STATUS.IE` stays set, the real trap vector is
//! irrelevant because the monitor intercepts traps at the machine boundary).

use hx_cpu::csr::{Csr, Status};
use hx_cpu::trap::Cause;
use hx_cpu::{Cpu, Mode};

/// Virtual privileged state of the guest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VCpu {
    /// The guest's *virtual* privilege mode (its kernel believes it runs in
    /// supervisor mode; the hardware mode is always user).
    pub vmode: Mode,
    /// Virtual `STATUS`.
    pub status: Status,
    /// Virtual trap vector.
    pub tvec: u32,
    /// Virtual exception PC.
    pub epc: u32,
    /// Virtual trap cause.
    pub cause: u32,
    /// Virtual trap value.
    pub tval: u32,
    /// Virtual page-table base (bit 0 = guest paging enabled).
    pub ptbr: u32,
    /// Virtual scratch register.
    pub scratch: u32,
}

impl Default for VCpu {
    fn default() -> Self {
        Self::new()
    }
}

impl VCpu {
    /// Reset state: virtual supervisor mode, interrupts masked, paging off —
    /// exactly what a kernel booting on real hardware would see.
    pub fn new() -> VCpu {
        VCpu {
            vmode: Mode::Supervisor,
            status: Status::default(),
            tvec: 0,
            epc: 0,
            cause: 0,
            tval: 0,
            ptbr: 0,
            scratch: 0,
        }
    }

    /// Does the guest currently accept virtual interrupts?
    pub fn interrupts_enabled(&self) -> bool {
        self.status.ie()
    }

    /// Is guest paging enabled (virtual `PTBR` bit 0)?
    pub fn paging_enabled(&self) -> bool {
        self.ptbr & 1 != 0
    }

    /// Physical base of the guest's level-1 page table.
    pub fn page_table_root(&self) -> u32 {
        self.ptbr & hx_cpu::mmu::pte::PPN_MASK
    }

    /// Emulated CSR read. Counter CSRs read through to the real CPU so the
    /// guest sees monotonic time (monitor time included — it runs on the
    /// same processor).
    pub fn read_csr(&self, csr: Csr, real: &Cpu) -> u32 {
        match csr {
            Csr::Status => self.status.0,
            Csr::Tvec => self.tvec,
            Csr::Epc => self.epc,
            Csr::Cause => self.cause,
            Csr::Tval => self.tval,
            Csr::Ptbr => self.ptbr,
            Csr::Scratch => self.scratch,
            Csr::Cycle | Csr::Cycleh | Csr::Instret | Csr::Instreth => real.read_csr(csr),
        }
    }

    /// Emulated CSR write. Returns `true` if the write changed state that
    /// the monitor must react to (`PTBR` — shadow switch; `STATUS` —
    /// possible interrupt-window opening).
    pub fn write_csr(&mut self, csr: Csr, val: u32) -> bool {
        match csr {
            Csr::Status => {
                self.status = Status::written(val);
                true
            }
            Csr::Tvec => {
                self.tvec = val & !3;
                false
            }
            Csr::Epc => {
                self.epc = val & !3;
                false
            }
            Csr::Cause => {
                self.cause = val;
                false
            }
            Csr::Tval => {
                self.tval = val;
                false
            }
            Csr::Ptbr => {
                self.ptbr = val & (hx_cpu::mmu::pte::PPN_MASK | 1);
                true
            }
            Csr::Scratch => {
                self.scratch = val;
                false
            }
            Csr::Cycle | Csr::Cycleh | Csr::Instret | Csr::Instreth => false,
        }
    }

    /// Performs the virtual side of trap entry: saves `IE`/`TF`/mode into
    /// the virtual status word, masks virtual interrupts, enters virtual
    /// supervisor mode and records `EPC`/`CAUSE`/`TVAL`.
    ///
    /// Returns the virtual handler PC the real CPU must jump to. The caller
    /// switches the shadow context if the virtual mode changed.
    pub fn enter_trap(&mut self, cause: Cause, epc: u32, tval: u32) -> u32 {
        let s = self.status;
        self.status = s
            .with(Status::PIE, s.ie())
            .with(Status::IE, false)
            .with(Status::PMODE, self.vmode == Mode::Supervisor)
            .with(Status::PTF, s.tf())
            .with(Status::TF, false);
        self.vmode = Mode::Supervisor;
        self.epc = epc;
        self.cause = cause.code();
        self.tval = tval;
        self.tvec
    }

    /// Performs the virtual side of `tret`: restores mode/`IE`/`TF` and
    /// returns the PC to resume at. The caller switches the shadow context
    /// if the virtual mode changed.
    pub fn leave_trap(&mut self) -> u32 {
        let s = self.status;
        self.vmode = if s.pmode_supervisor() {
            Mode::Supervisor
        } else {
            Mode::User
        };
        self.status = s.with(Status::IE, s.pie()).with(Status::TF, s.ptf());
        self.epc
    }

    /// Maps a hardware trap cause (always raised from hardware user mode)
    /// to the cause the guest should observe given its *virtual* mode.
    pub fn virtual_cause(&self, hw: Cause) -> Cause {
        match (hw, self.vmode) {
            (Cause::EcallU, Mode::Supervisor) => Cause::EcallS,
            (c, _) => c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_matches_real_boot() {
        let v = VCpu::new();
        assert_eq!(v.vmode, Mode::Supervisor);
        assert!(!v.interrupts_enabled());
        assert!(!v.paging_enabled());
    }

    #[test]
    fn trap_entry_and_return_roundtrip() {
        let mut v = VCpu::new();
        v.tvec = 0x800;
        v.status = Status::written(Status::IE);
        v.vmode = Mode::User; // guest app running

        let handler = v.enter_trap(Cause::EcallU, 0x1234, 0);
        assert_eq!(handler, 0x800);
        assert_eq!(v.vmode, Mode::Supervisor);
        assert!(!v.interrupts_enabled());
        assert_eq!(v.epc, 0x1234);
        assert_eq!(v.cause, Cause::EcallU.code());

        // Handler advances EPC past the ecall, then returns.
        v.epc += 4;
        let resume = v.leave_trap();
        assert_eq!(resume, 0x1238);
        assert_eq!(v.vmode, Mode::User);
        assert!(v.interrupts_enabled());
    }

    #[test]
    fn nested_trap_preserves_inner_state() {
        let mut v = VCpu::new();
        v.tvec = 0x800;
        v.status = Status::written(Status::IE);
        v.enter_trap(Cause::Interrupt, 0x100, 3);
        // Second trap while in the handler (vIE now 0, from vS mode).
        v.enter_trap(Cause::LoadPageFault, 0x804, 0xdead);
        assert!(v.status.pmode_supervisor());
        assert!(!v.status.pie(), "inner PIE records masked state");
        let r1 = v.leave_trap();
        assert_eq!(r1, 0x804);
        assert_eq!(v.vmode, Mode::Supervisor);
        assert!(!v.interrupts_enabled(), "outer trap context still masked");
    }

    #[test]
    fn csr_dispatch() {
        let mut v = VCpu::new();
        let real = Cpu::new();
        assert!(v.write_csr(Csr::Status, 0xffff_ffff));
        assert_eq!(v.read_csr(Csr::Status, &real), Status::MASK);
        assert!(!v.write_csr(Csr::Tvec, 0x1003));
        assert_eq!(v.read_csr(Csr::Tvec, &real), 0x1000);
        assert!(v.write_csr(Csr::Ptbr, 0x5001));
        assert!(v.paging_enabled());
        assert_eq!(v.page_table_root(), 0x5000);
        assert!(!v.write_csr(Csr::Scratch, 7));
        assert_eq!(v.read_csr(Csr::Scratch, &real), 7);
        // Counters read through to the real CPU.
        assert_eq!(v.read_csr(Csr::Cycle, &real), real.read_csr(Csr::Cycle));
        assert!(!v.write_csr(Csr::Cycle, 1), "counter writes ignored");
    }

    #[test]
    fn ecall_cause_depends_on_virtual_mode() {
        let mut v = VCpu::new();
        v.vmode = Mode::Supervisor;
        assert_eq!(v.virtual_cause(Cause::EcallU), Cause::EcallS);
        v.vmode = Mode::User;
        assert_eq!(v.virtual_cause(Cause::EcallU), Cause::EcallU);
        assert_eq!(v.virtual_cause(Cause::LoadPageFault), Cause::LoadPageFault);
    }

    #[test]
    fn virtual_single_step_flag_restored_by_tret() {
        let mut v = VCpu::new();
        v.status = Status::written(Status::TF | Status::IE);
        v.enter_trap(Cause::DebugStep, 0x10, 0);
        assert!(!v.status.tf());
        assert!(v.status.ptf());
        v.leave_trap();
        assert!(v.status.tf(), "guest's own TF restored");
    }
}
