//! Journal replay: deterministic re-execution of a recorded run.
//!
//! The simulation is a discrete-event system whose only nondeterministic
//! inputs are host UART bytes and injected NIC frames. A sealed
//! [`hx_obs::Journal`] captures both with the simulated cycle at which they
//! arrived, so re-injecting them at the same cycles on a freshly booted
//! platform reproduces the original run exactly — same trace events, same
//! exit histograms, same guest memory, byte for byte.
//!
//! [`ReplayDriver`] works against `&mut dyn Platform`, so the same journal
//! can be replayed on a *different* platform (e.g. recorded under the
//! lightweight monitor, replayed on the hosted-VMM baseline) and the two
//! runs' device-event streams diffed with [`hx_obs::audit`] to find the
//! first behavioural divergence between the systems.

use hx_machine::platform::PlatformStep;
use hx_machine::Platform;
use hx_obs::{Journal, JournalInput, ReplayCursor};

/// Re-executes a recorded journal against a platform.
///
/// The platform must be freshly constructed in the same configuration the
/// recording started from (same guest image, RAM size, trace settings);
/// the driver injects inputs, it does not rewind state.
#[derive(Debug)]
pub struct ReplayDriver {
    cursor: ReplayCursor,
}

impl ReplayDriver {
    /// Prepares to replay `journal` from its beginning.
    pub fn new(journal: &Journal) -> ReplayDriver {
        ReplayDriver {
            cursor: ReplayCursor::new(journal),
        }
    }

    /// Journaled inputs not yet injected.
    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }

    /// Runs `platform` to the journal's end cycle, injecting each recorded
    /// input at its recorded cycle. Returns the platform's final cycle
    /// (equal to the journal's end cycle when replay reached it; less if
    /// the machine got stuck early, which indicates divergence).
    pub fn run(&mut self, platform: &mut dyn Platform) -> u64 {
        let end = self.cursor.end();
        loop {
            let now = platform.machine().now();
            let mut injected = false;
            while let Some(rec) = self.cursor.pop_due(now) {
                match rec.input {
                    JournalInput::UartRx(bytes) => platform.machine_mut().uart_input(&bytes),
                    JournalInput::NicRx(frame) => platform.inject_rx_frame(&frame),
                }
                injected = true;
            }
            if now >= end {
                break;
            }
            // The precise (unbatched) path: a batching `step` could fly past
            // a journaled injection cycle or the journal's end cycle, and
            // those overshoots are exactly the divergences replay must not
            // introduce.
            if platform.step_precise() == PlatformStep::Stuck && !injected {
                break;
            }
            // The original host drained stub output as it ran; an undrained
            // queue would only grow without bound here.
            let _ = platform.machine_mut().uart_output();
        }
        platform.machine().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LvmmPlatform;
    use hx_machine::{Machine, MachineConfig};

    fn boot() -> LvmmPlatform {
        let program = hx_asm::assemble(
            "        .org 0x1000
             start:  addi s0, s0, 1
                     j    start
            ",
        )
        .expect("guest assembles");
        let mut machine = Machine::new(MachineConfig {
            ram_size: 4 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let mut vmm = LvmmPlatform::new(machine, 0x1000);
        vmm.enable_flight_recorder(1_000_000);
        vmm
    }

    #[test]
    fn replay_reproduces_final_machine_state() {
        let mut rec = boot();
        rec.run_for(40_000);
        rec.machine_mut().uart_input(&[0x55, 0xaa]); // journaled garbage
        rec.run_for(40_000);
        let end = rec.machine().now();
        let mut journal = rec.machine().obs.journal().cloned().expect("journaling");
        journal.seal(end);

        let mut rep = boot();
        let reached = ReplayDriver::new(&journal).run(&mut rep);
        assert_eq!(reached, end);
        assert_eq!(
            rep.machine().cpu.reg(hx_cpu::Reg::R8),
            rec.machine().cpu.reg(hx_cpu::Reg::R8)
        );
        assert_eq!(rep.machine().mem.as_bytes(), rec.machine().mem.as_bytes());
    }
}
