//! Debug-stub state: breakpoints, watchpoints, stop bookkeeping and the
//! wire-protocol parser.
//!
//! The stub's *state* lives here, in monitor memory (plain Rust fields —
//! unreachable from the guest by construction of the shadow tables). The
//! stub's *behaviour* — executing commands against the guest — is
//! implemented on [`crate::LvmmPlatform`], which owns both the machine and
//! this state.

use hx_query::Expr;
use rdbg::msg::{StopReason, WatchKind};
use rdbg::wire::PacketParser;
use std::collections::HashMap;

/// Stub error codes carried in `E..` replies.
pub mod err {
    /// Unparseable command payload.
    pub const PARSE: u8 = 1;
    /// Bad register selector.
    pub const REG: u8 = 2;
    /// Guest memory unreachable (unmapped, outside guest RAM, …).
    pub const MEM: u8 = 3;
    /// Command requires a stopped guest.
    pub const NOT_STOPPED: u8 = 4;
    /// Breakpoint/watchpoint already exists or is missing.
    pub const BP: u8 = 5;
    /// Flight recorder unavailable, or the request fell off the recorded
    /// timeline (no checkpoint at or before the target cycle).
    pub const RECORDER: u8 = 6;
    /// No profiler enabled on the target.
    pub const PROFILER: u8 = 7;
    /// Malformed condition/query expression.
    pub const QUERY: u8 = 8;
    /// No host-time metrics available on the target (the host profiler is
    /// not enabled, or the stub has no host clock at all — the in-kernel
    /// stub answers `qMetrics` with this code unconditionally). Code 9 is
    /// the embedded stub's generic "unsupported command" and is skipped
    /// here deliberately.
    pub const METRICS: u8 = 10;
    /// Thread (core) selector out of range, or the selected core has not
    /// been started.
    pub const CORE: u8 = 11;
    /// No causal-flow tracker enabled on the target.
    pub const CAUSAL: u8 = 12;
}

/// One armed data watchpoint.
#[derive(Debug, Clone)]
pub struct Watchpoint {
    /// Watched guest virtual address.
    pub addr: u32,
    /// Watched range length in bytes.
    pub len: u32,
    /// Which access directions trigger it.
    pub kind: WatchKind,
    /// Optional condition: the stop fires only when it evaluates nonzero
    /// (an unevaluable condition stops too — fail safe).
    pub cond: Option<Expr>,
}

/// What the stub armed single-step for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepIntent {
    /// Host asked for one instruction: stop and report after it.
    Step,
    /// Stepping over a lifted breakpoint on the way to `continue`.
    Resume,
}

/// Stub statistics, for the debug-latency experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StubStats {
    /// Commands executed.
    pub commands: u64,
    /// Bytes received from the host.
    pub bytes_in: u64,
    /// Bytes sent to the host.
    pub bytes_out: u64,
    /// Break-in requests honoured.
    pub break_ins: u64,
    /// Packets retransmitted after a host NAK.
    pub retransmits: u64,
}

/// The monitor-resident debug stub state.
#[derive(Debug, Clone)]
pub struct Stub {
    /// Wire-protocol parser over the UART byte stream.
    pub parser: PacketParser,
    /// Planted software breakpoints: guest VA → original instruction word.
    pub breakpoints: HashMap<u32, u32>,
    /// Breakpoint conditions: guest VA → condition expression. A planted
    /// breakpoint with no entry here stops unconditionally.
    pub bp_conds: HashMap<u32, Expr>,
    /// Armed data watchpoints.
    pub watchpoints: Vec<Watchpoint>,
    /// Is the guest currently stopped under debugger control?
    pub stopped: bool,
    /// The most recent stop reason (valid while `stopped`).
    pub last_stop: Option<StopReason>,
    /// A breakpoint temporarily lifted so the guest can step off it; it is
    /// re-planted on the next single-step trap.
    pub lifted_bp: Option<u32>,
    /// Why the real single-step flag is armed, if it is.
    pub step_intent: Option<StepIntent>,
    /// The last packet sent, kept until the host ACKs it so a NAK (or a
    /// host-side timeout turned into a NAK) can be answered by
    /// retransmission instead of wedging the session.
    pub last_tx: Option<Vec<u8>>,
    /// Retransmissions of the current `last_tx` so far; bounded by
    /// [`Stub::RESEND_LIMIT`] so a hard-broken line cannot loop forever.
    pub resends: u8,
    /// The core (GDB "thread") the host has selected with `Hg`; register
    /// and memory commands answer against this core's view. Always a valid
    /// index — `Hg` rejects out-of-range selectors.
    pub sel_core: u32,
    /// Statistics.
    pub stats: StubStats,
}

impl Default for Stub {
    fn default() -> Self {
        Self::new()
    }
}

impl Stub {
    /// Most retransmissions of one packet before the stub gives up on it.
    pub const RESEND_LIMIT: u8 = 8;

    /// Creates an idle stub with the guest running.
    pub fn new() -> Stub {
        Stub {
            parser: PacketParser::new(),
            breakpoints: HashMap::new(),
            bp_conds: HashMap::new(),
            watchpoints: Vec::new(),
            stopped: false,
            last_stop: None,
            lifted_bp: None,
            step_intent: None,
            last_tx: None,
            resends: 0,
            sel_core: 0,
            stats: StubStats::default(),
        }
    }

    /// Does any *write-sensitive* watchpoint overlap the 4 KiB page
    /// containing `va`? Such pages must never get a writable shadow
    /// mapping.
    pub fn watch_overlaps_page_write(&self, va: u32) -> bool {
        self.watch_overlaps_page(va, |k| k.watches_write())
    }

    /// Does any *read-sensitive* watchpoint overlap the 4 KiB page
    /// containing `va`? Such pages must never get a readable shadow
    /// mapping.
    pub fn watch_overlaps_page_read(&self, va: u32) -> bool {
        self.watch_overlaps_page(va, |k| k.watches_read())
    }

    fn watch_overlaps_page(&self, va: u32, dir: impl Fn(WatchKind) -> bool) -> bool {
        let page = va & !0xfff;
        self.watchpoints.iter().any(|w| {
            dir(w.kind)
                && w.addr < page.saturating_add(0x1000)
                && w.addr.saturating_add(w.len) > page
        })
    }

    /// Does an access to `[va, va+len)` hit a watchpoint exactly?
    /// `is_store` selects the direction the watchpoint must be sensitive
    /// to.
    pub fn watch_hit(&self, va: u32, len: u32, is_store: bool) -> Option<&Watchpoint> {
        self.watchpoints.iter().find(|w| {
            let dir = if is_store {
                w.kind.watches_write()
            } else {
                w.kind.watches_read()
            };
            dir && w.addr < va.saturating_add(len) && w.addr.saturating_add(w.len) > va
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(addr: u32, len: u32, kind: WatchKind) -> Watchpoint {
        Watchpoint {
            addr,
            len,
            kind,
            cond: None,
        }
    }

    #[test]
    fn watch_overlap_logic() {
        let mut s = Stub::new();
        // Straddles a page boundary.
        s.watchpoints.push(wp(0x2ffc, 8, WatchKind::Write));
        assert!(s.watch_overlaps_page_write(0x2000));
        assert!(s.watch_overlaps_page_write(0x3000));
        assert!(!s.watch_overlaps_page_write(0x4000));
        assert!(!s.watch_overlaps_page_read(0x3000), "write-only watch");
        assert_eq!(s.watch_hit(0x3000, 4, true).map(|w| w.addr), Some(0x2ffc));
        assert!(s.watch_hit(0x2ff8, 4, true).is_none());
        assert_eq!(s.watch_hit(0x2ff8, 5, true).map(|w| w.addr), Some(0x2ffc));
        assert!(s.watch_hit(0x3004, 4, true).is_none());
        assert!(s.watch_hit(0x3000, 4, false).is_none(), "loads not watched");
    }

    #[test]
    fn watch_kinds_select_directions() {
        let mut s = Stub::new();
        s.watchpoints.push(wp(0x1000, 4, WatchKind::Read));
        s.watchpoints.push(wp(0x5000, 4, WatchKind::Access));
        assert!(s.watch_overlaps_page_read(0x1000));
        assert!(!s.watch_overlaps_page_write(0x1000));
        assert!(s.watch_overlaps_page_read(0x5000));
        assert!(s.watch_overlaps_page_write(0x5000));
        assert!(s.watch_hit(0x1000, 4, true).is_none());
        assert!(s.watch_hit(0x1000, 4, false).is_some());
        assert!(s.watch_hit(0x5000, 4, true).is_some());
        assert!(s.watch_hit(0x5000, 4, false).is_some());
    }

    #[test]
    fn default_state() {
        let s = Stub::new();
        assert!(!s.stopped);
        assert!(s.breakpoints.is_empty());
        assert!(s.bp_conds.is_empty());
        assert!(s.last_stop.is_none());
    }

    #[test]
    fn err_names_cover_all_stub_codes() {
        // The host-side decoder must know every code the stub can emit.
        for code in [
            err::PARSE,
            err::REG,
            err::MEM,
            err::NOT_STOPPED,
            err::BP,
            err::RECORDER,
            err::PROFILER,
            err::QUERY,
            err::METRICS,
            err::CORE,
            err::CAUSAL,
        ] {
            assert!(
                rdbg::err_name(code).is_some(),
                "stub error code {code} has no host-side name"
            );
        }
    }
}
