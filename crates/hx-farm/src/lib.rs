//! The debug farm: one host process serving N concurrent guests.
//!
//! The ROADMAP's production-scale step: instead of one machine per process,
//! a [`Farm`] boots N independent machines (any mix of platforms and core
//! counts), shards them across worker threads, and exposes each machine's
//! in-monitor rdbg stub on its own TCP socket — plus one *control* socket
//! for fleet-wide aggregation (`stats`/`prof`/`metrics` summed across
//! guests, with per-guest drill-down) and lifecycle commands (`evict`,
//! `shutdown`).
//!
//! # Determinism
//!
//! A farm-served guest simulates **byte-identically** to the same guest run
//! standalone. The worker loop only ever calls [`Platform::run_for`] in
//! slices — and slicing is simulation-invisible (`run_for(a); run_for(b)`
//! ≡ `run_for(a + b)`, a tested engine invariant) — and injects nothing
//! unless a debug client actually sends bytes. With a flight recorder on,
//! the journal sealed at the simulation horizon is the same text a
//! standalone run produces; `tests/farm.rs` proves this differentially.
//!
//! # Fault isolation
//!
//! One wedged guest must not stall its shard. Three mechanisms:
//!
//! - every slice is bounded (`slice` cycles), so a worker never dwells on
//!   one guest;
//! - a guest whose machine reports [`PlatformStep::Stuck`] (a fault
//!   campaign wedged it, say) is **parked**: it stops consuming worker
//!   time but its debug socket stays served — incoming debugger traffic
//!   wakes it, which is exactly how a crashed OS is debugged;
//! - a guest that repeatedly blows the per-slice host-time budget is
//!   **evicted**: simulation stops, its socket drops, and fleet status
//!   reports it so the operator knows. The control `evict` command does
//!   the same on demand.
//!
//! The `Send` supertrait on [`Platform`] (and on `rdbg::Link`) is what
//! lets whole machines cross thread boundaries here without per-site
//! bounds.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hitactix::{GuestStats, Workload};
use hosted_vmm::{HostedConfig, HostedPlatform};
use hx_fault::{FaultKind, FaultPlan};
use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
use hx_obs::{Profiler, SymbolMap};
use hx_query::json::JsonObj;
use lvmm::{LvmmConfig, LvmmPlatform};

/// Which platform a farm guest boots under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarmPlatform {
    /// Guest owns the hardware — debuggable only via the embedded stub.
    Raw,
    /// The paper's lightweight monitor (full stub, flight recorder).
    Lvmm,
    /// The hosted full monitor.
    Hosted,
}

impl FarmPlatform {
    /// Parses the same labels `lwvmm-run --platform` accepts.
    pub fn from_label(s: &str) -> Option<FarmPlatform> {
        match s {
            "raw" | "real-hw" => Some(FarmPlatform::Raw),
            "lvmm" => Some(FarmPlatform::Lvmm),
            "hosted" => Some(FarmPlatform::Hosted),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            FarmPlatform::Raw => "real-hw",
            FarmPlatform::Lvmm => "lvmm",
            FarmPlatform::Hosted => "hosted",
        }
    }
}

/// One guest's boot recipe.
#[derive(Debug, Clone)]
pub struct GuestSpec {
    pub platform: FarmPlatform,
    /// vCPU count (1..=MAX_CORES).
    pub cores: usize,
    /// Streaming-workload target rate, Mbit/s.
    pub rate_mbps: u64,
    /// Record a journal (and, under lvmm, a flight recorder with
    /// checkpoints) so sessions can time-travel.
    pub record: bool,
    /// Attribute guest cycles to kernel symbols (serves `prof`).
    pub profile: bool,
    /// Attribute host wall-clock (serves `metrics`).
    pub hostprof: bool,
    /// Fault campaign: `Some(("all"|class, seed))`.
    pub fault: Option<(String, u64)>,
}

impl Default for GuestSpec {
    fn default() -> GuestSpec {
        GuestSpec {
            platform: FarmPlatform::Lvmm,
            cores: 1,
            rate_mbps: 100,
            record: true,
            profile: false,
            hostprof: false,
            fault: None,
        }
    }
}

/// Farm-wide configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    pub guests: Vec<GuestSpec>,
    /// Worker threads the guests are sharded across (round-robin).
    pub workers: usize,
    /// Simulated cycles per service slice. Small enough for interactive
    /// debugging, large enough to amortize the lock/poll overhead.
    pub slice: u64,
    /// Stop simulating each guest once its clock reaches this cycle
    /// (`None`: run until shut down). Debug sessions keep working after
    /// the horizon — the journal is sealed exactly at it.
    pub horizon: Option<u64>,
    /// Flight-recorder checkpoint cadence (cycles), for `record` guests.
    /// Each checkpoint snapshots and digests all of guest RAM, so a cadence
    /// much below the default makes dozens of guests unaffordable.
    pub record_every: u64,
    /// Host-time budget for one slice; a guest exceeding it
    /// `slow_strikes` times in a row is evicted.
    pub slow_budget: Duration,
    pub slow_strikes: u32,
    /// Bind guest `i` to `base_port + 1 + i` and control to `base_port`
    /// (`None`: ephemeral ports, reported by [`Farm::ports`]).
    pub base_port: Option<u16>,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            guests: Vec::new(),
            workers: 4,
            slice: 20_000,
            horizon: None,
            // Matches `CheckpointStore::DEFAULT_EVERY` (the store is generic,
            // so the constant cannot be named without a state type).
            record_every: 2_000_000,
            slow_budget: Duration::from_millis(250),
            slow_strikes: 3,
            base_port: None,
        }
    }
}

/// Guest lifecycle, as reported in fleet status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestHealth {
    /// Simulating normally.
    Running,
    /// Reached the simulation horizon; socket still served.
    Done,
    /// Machine reported `Stuck` (wedged/crashed guest); socket still
    /// served, debugger traffic wakes it.
    Parked,
    /// Removed from service (budget overrun or operator `evict`).
    Evicted,
}

impl GuestHealth {
    pub fn label(self) -> &'static str {
        match self {
            GuestHealth::Running => "running",
            GuestHealth::Done => "done",
            GuestHealth::Parked => "parked",
            GuestHealth::Evicted => "evicted",
        }
    }
}

/// Final per-guest summary returned by [`Farm::shutdown`].
#[derive(Debug)]
pub struct GuestReport {
    pub id: usize,
    pub platform: &'static str,
    pub health: GuestHealth,
    pub port: u16,
    pub now: u64,
    pub instret: u64,
    pub sessions: u64,
    /// The sealed journal text (only `record` guests that reached the
    /// horizon; the differential determinism test compares this byte for
    /// byte with a standalone run).
    pub journal: Option<String>,
}

struct GuestSlot {
    id: usize,
    platform: Box<dyn Platform>,
    listener: TcpListener,
    conn: Option<TcpStream>,
    health: GuestHealth,
    port: u16,
    sessions: u64,
    bytes_in: u64,
    bytes_out: u64,
    slow: u32,
    record: bool,
    journal_text: Option<String>,
}

impl GuestSlot {
    /// One service pass: accept, ingest client bytes, run a bounded slice,
    /// drain UART to the client, update health. Returns `true` if the
    /// guest did anything (so the worker knows whether to back off).
    fn service(&mut self, cfg: &FarmShared) -> bool {
        if self.health == GuestHealth::Evicted {
            // Fail fast for new clients instead of letting them hang.
            while let Ok((s, _)) = self.listener.accept() {
                drop(s);
            }
            return false;
        }
        if let Ok((s, _)) = self.listener.accept() {
            if self.conn.is_none() {
                s.set_nonblocking(true).ok();
                s.set_nodelay(true).ok();
                self.conn = Some(s);
                self.sessions += 1;
            }
            // A second concurrent client on the same guest is refused by
            // drop — one stub, one session.
        }
        let mut got = 0usize;
        if let Some(c) = &mut self.conn {
            let mut buf = [0u8; 4096];
            loop {
                match c.read(&mut buf) {
                    Ok(0) => {
                        self.conn = None;
                        break;
                    }
                    Ok(n) => {
                        // Client bytes are the *only* external input a farm
                        // guest ever sees; with no client the simulation is
                        // standalone-identical.
                        self.platform.machine_mut().uart_input(&buf[..n]);
                        got += n;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.conn = None;
                        break;
                    }
                }
            }
        }
        self.bytes_in += got as u64;

        let run = match self.health {
            GuestHealth::Running => true,
            // Parked/Done guests consume no worker time on their own, but
            // debugger traffic drives slices so the stub keeps answering.
            GuestHealth::Parked | GuestHealth::Done => got > 0,
            GuestHealth::Evicted => false,
        };
        if !run {
            return got > 0;
        }

        let mut slice = cfg.slice;
        if self.health == GuestHealth::Running {
            if let Some(h) = cfg.horizon {
                let remaining = h.saturating_sub(self.platform.machine().now());
                if remaining == 0 {
                    self.finish_horizon();
                    return true;
                }
                slice = slice.min(remaining);
            }
        }

        let t0 = Instant::now();
        let ran = self.platform.run_for(slice);
        let host = t0.elapsed();

        let out = self.platform.machine_mut().uart_output();
        if !out.is_empty() {
            self.bytes_out += out.len() as u64;
            if let Some(c) = &mut self.conn {
                if c.write_all(&out).is_err() {
                    self.conn = None;
                }
            }
        }

        // Per-guest isolation: a guest that keeps blowing the host-time
        // budget gets evicted so its shard stays responsive for neighbors.
        if host > cfg.slow_budget {
            self.slow += 1;
            if self.slow >= cfg.slow_strikes {
                self.evict();
                return true;
            }
        } else {
            self.slow = 0;
        }

        if self.health == GuestHealth::Running {
            if let Some(h) = cfg.horizon {
                if self.platform.machine().now() >= h {
                    self.finish_horizon();
                    return true;
                }
            }
            if ran < slice {
                // `run_for` came up short: the machine hit `Stuck`. Park it
                // — debugger traffic can still wake it for post-mortem.
                self.health = GuestHealth::Parked;
            }
        }
        ran > 0 || got > 0
    }

    /// Seals the journal exactly at the horizon and retires the guest to
    /// `Done`. Debug sessions (including time travel) keep working.
    fn finish_horizon(&mut self) {
        if self.record {
            let now = self.platform.machine().now();
            let obs = &mut self.platform.machine_mut().obs;
            if let Some(j) = obs.journal_mut() {
                j.seal(now);
            }
            self.journal_text = obs.journal().map(|j| j.save());
        }
        self.health = GuestHealth::Done;
    }

    fn evict(&mut self) {
        self.health = GuestHealth::Evicted;
        self.conn = None;
    }
}

struct FarmShared {
    guests: Vec<Mutex<GuestSlot>>,
    running: AtomicBool,
    slice: u64,
    horizon: Option<u64>,
    slow_budget: Duration,
    slow_strikes: u32,
}

/// The farm: N guests behind per-guest debug sockets plus a control socket,
/// serviced by worker threads until [`Farm::shutdown`] (or a control
/// `shutdown` command).
pub struct Farm {
    shared: Arc<FarmShared>,
    workers: Vec<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
    control_port: u16,
    ports: Vec<u16>,
}

/// Boots one guest exactly the way the standalone binaries do — same
/// machine config, same workload build, same enable order — so a farm
/// guest's simulation (and journal) is standalone-identical.
fn boot_guest(spec: &GuestSpec, record_every: u64) -> Result<Box<dyn Platform>, String> {
    let mut machine = Machine::new(MachineConfig {
        num_cores: spec.cores,
        ..MachineConfig::default()
    });
    let program = Workload::new(spec.rate_mbps)
        .build(&machine)
        .map_err(|e| format!("kernel build failed: {e:?}"))?;
    machine.load_program(&program);
    if spec.profile {
        machine.obs.enable_profiler(Profiler::new(
            SymbolMap::from_ranges(hitactix::kernel::profile_symbols(&program)),
            Profiler::DEFAULT_INTERVAL,
        ));
    }
    if spec.hostprof {
        machine.obs.enable_hostprof();
    }
    if let Some((class, seed)) = &spec.fault {
        let ram_size = machine.config().ram_size as u32;
        let wild_limit = match spec.platform {
            FarmPlatform::Raw => ram_size,
            FarmPlatform::Hosted => ram_size - HostedConfig::default().host_mem,
            FarmPlatform::Lvmm => ram_size - LvmmConfig::default().monitor_mem,
        };
        let mut plan = FaultPlan::new(*seed).wild(ram_size, wild_limit);
        if class != "all" {
            let kind = FaultKind::from_label(class)
                .ok_or_else(|| format!("unknown fault class `{class}`"))?;
            plan = plan.only(kind);
        }
        machine.enable_fault_injection(plan);
    }
    let entry = hitactix::kernel::layout::ENTRY;
    Ok(match spec.platform {
        FarmPlatform::Raw => {
            let mut p = RawPlatform::new(machine);
            if spec.record {
                let name = p.name();
                p.machine_mut().obs.enable_journal(name);
            }
            Box::new(p)
        }
        FarmPlatform::Lvmm => {
            let mut p = LvmmPlatform::new(machine, entry);
            if spec.record {
                p.enable_flight_recorder(record_every);
            }
            Box::new(p)
        }
        FarmPlatform::Hosted => {
            let mut p = HostedPlatform::new(machine, entry);
            if spec.record {
                let name = p.name();
                p.machine_mut().obs.enable_journal(name);
            }
            Box::new(p)
        }
    })
}

impl Farm {
    /// Boots every guest, binds every socket, and starts the workers and
    /// the control thread.
    pub fn launch(cfg: FarmConfig) -> Result<Farm, String> {
        if cfg.guests.is_empty() {
            return Err("farm needs at least one guest".into());
        }
        let mut slots = Vec::with_capacity(cfg.guests.len());
        let mut ports = Vec::with_capacity(cfg.guests.len());
        for (id, spec) in cfg.guests.iter().enumerate() {
            let platform = boot_guest(spec, cfg.record_every)?;
            let port = cfg.base_port.map(|b| b + 1 + id as u16).unwrap_or(0);
            let listener = TcpListener::bind(("127.0.0.1", port))
                .map_err(|e| format!("guest {id}: bind failed: {e}"))?;
            listener.set_nonblocking(true).ok();
            let port = listener.local_addr().map_err(|e| e.to_string())?.port();
            ports.push(port);
            slots.push(Mutex::new(GuestSlot {
                id,
                platform,
                listener,
                conn: None,
                health: GuestHealth::Running,
                port,
                sessions: 0,
                bytes_in: 0,
                bytes_out: 0,
                slow: 0,
                record: spec.record,
                journal_text: None,
            }));
        }
        let control_listener = TcpListener::bind(("127.0.0.1", cfg.base_port.unwrap_or(0)))
            .map_err(|e| format!("control: bind failed: {e}"))?;
        control_listener.set_nonblocking(true).ok();
        let control_port = control_listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .port();

        let shared = Arc::new(FarmShared {
            guests: slots,
            running: AtomicBool::new(true),
            slice: cfg.slice,
            horizon: cfg.horizon,
            slow_budget: cfg.slow_budget,
            slow_strikes: cfg.slow_strikes,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                let stride = cfg.workers.max(1);
                thread::Builder::new()
                    .name(format!("farm-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w, stride))
                    .expect("spawn worker")
            })
            .collect();
        let control = {
            let shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("farm-control".into())
                    .spawn(move || control_loop(&shared, control_listener))
                    .expect("spawn control"),
            )
        };
        Ok(Farm {
            shared,
            workers,
            control,
            control_port,
            ports,
        })
    }

    /// Per-guest debug-socket ports, in guest-id order.
    pub fn ports(&self) -> &[u16] {
        &self.ports
    }

    pub fn control_port(&self) -> u16 {
        self.control_port
    }

    /// True once no guest is `Running` (all done, parked, or evicted).
    pub fn all_settled(&self) -> bool {
        self.shared
            .guests
            .iter()
            .all(|g| g.lock().unwrap().health != GuestHealth::Running)
    }

    /// Blocks until [`Farm::all_settled`] or the timeout; returns whether
    /// the fleet settled.
    pub fn wait_settled(&self, timeout: Duration) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < timeout {
            if self.all_settled() {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        self.all_settled()
    }

    /// True while the farm serves (a control `shutdown` clears it).
    pub fn serving(&self) -> bool {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Runs `f` with exclusive access to guest `id`'s platform (the guest
    /// is paused for the duration — workers wait on the same lock). Used
    /// for host-side inspection: memory dumps, stats peeks, test probes.
    pub fn with_guest<R>(&self, id: usize, f: impl FnOnce(&mut dyn Platform) -> R) -> Option<R> {
        let slot = self.shared.guests.get(id)?;
        let mut g = slot.lock().unwrap();
        Some(f(g.platform.as_mut()))
    }

    /// Stops workers and control thread, tears down sockets, and returns
    /// the per-guest reports (with sealed journals where recorded).
    pub fn shutdown(mut self) -> Vec<GuestReport> {
        self.shared.running.store(false, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(c) = self.control.take() {
            let _ = c.join();
        }
        self.shared
            .guests
            .iter()
            .map(|g| {
                let mut g = g.lock().unwrap();
                GuestReport {
                    id: g.id,
                    platform: g.platform.name(),
                    health: g.health,
                    port: g.port,
                    now: g.platform.machine().now(),
                    instret: g.platform.machine().total_instret(),
                    sessions: g.sessions,
                    journal: g.journal_text.take(),
                }
            })
            .collect()
    }
}

fn worker_loop(shared: &FarmShared, first: usize, stride: usize) {
    while shared.running.load(Ordering::Relaxed) {
        let mut active = false;
        let mut i = first;
        while i < shared.guests.len() {
            // Guests are serviced one lock at a time: the control thread
            // (and `shutdown`) interleave between slices, and a slice is
            // bounded, so no guest can wedge the shard.
            if shared.guests[i].lock().unwrap().service(shared) {
                active = true;
            }
            i += stride;
        }
        if !active {
            thread::sleep(Duration::from_millis(1));
        }
    }
}

fn control_loop(shared: &FarmShared, listener: TcpListener) {
    while shared.running.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(false).ok();
                stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .ok();
                let mut out = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let reply = handle_control(shared, line.trim());
                    if out.write_all(reply.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                        break;
                    }
                    if !shared.running.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Parses and answers one control command with one JSON line.
fn handle_control(shared: &FarmShared, line: &str) -> String {
    let mut words = line.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let arg = words.next();
    let guest_arg = |arg: Option<&str>| -> Result<Option<usize>, String> {
        match arg {
            None => Ok(None),
            Some(s) => {
                let id: usize = s.parse().map_err(|_| format!("bad guest id `{s}`"))?;
                if id >= shared.guests.len() {
                    return Err(format!("no guest {id}"));
                }
                Ok(Some(id))
            }
        }
    };
    let res = match cmd {
        "status" => Ok(status_json(shared)),
        "stats" => guest_arg(arg).map(|g| stats_json(shared, g)),
        "prof" => guest_arg(arg).map(|g| prof_json(shared, g)),
        "metrics" => guest_arg(arg).map(|g| metrics_json(shared, g)),
        "evict" => match guest_arg(arg) {
            Ok(Some(id)) => {
                shared.guests[id].lock().unwrap().evict();
                let mut o = JsonObj::new();
                o.u64("evicted", id as u64);
                Ok(o.finish())
            }
            Ok(None) => Err("evict needs a guest id".into()),
            Err(e) => Err(e),
        },
        "shutdown" => {
            shared.running.store(false, Ordering::Relaxed);
            let mut o = JsonObj::new();
            o.bool("ok", true);
            Ok(o.finish())
        }
        _ => Err(format!(
            "unknown command `{cmd}` (status|stats [id]|prof [id]|metrics [id]|evict <id>|shutdown)"
        )),
    };
    res.unwrap_or_else(|e| {
        let mut o = JsonObj::new();
        o.str("error", &e);
        o.finish()
    })
}

fn status_json(shared: &FarmShared) -> String {
    let mut counts = BTreeMap::new();
    let mut guests = Vec::new();
    for slot in &shared.guests {
        let g = slot.lock().unwrap();
        *counts.entry(g.health.label()).or_insert(0u64) += 1;
        let mut o = JsonObj::new();
        o.u64("id", g.id as u64)
            .str("platform", g.platform.name())
            .str("health", g.health.label())
            .u64("port", g.port as u64)
            .u64("now", g.platform.machine().now())
            .u64("sessions", g.sessions)
            .u64("bytes_in", g.bytes_in)
            .u64("bytes_out", g.bytes_out);
        guests.push(o.finish());
    }
    let mut fleet = JsonObj::new();
    fleet.u64("guests", shared.guests.len() as u64);
    for (health, n) in counts {
        fleet.u64(health, n);
    }
    let mut o = JsonObj::new();
    o.raw("fleet", &fleet.finish());
    o.raw("guests", &format!("[{}]", guests.join(",")));
    o.finish()
}

/// Per-guest counters plus a fleet total that is, by construction, the
/// field-wise sum of the per-guest objects — the farm-smoke CI job
/// re-derives the sum externally and asserts equality.
fn stats_json(shared: &FarmShared, which: Option<usize>) -> String {
    let mut guests = Vec::new();
    let mut tot: BTreeMap<&str, u64> = BTreeMap::new();
    let keys = [
        "instret",
        "guest_cycles",
        "monitor_cycles",
        "host_model_cycles",
        "idle_cycles",
        "frames",
        "stream_bytes",
        "journal_payload_bytes",
        "sessions",
    ];
    for slot in &shared.guests {
        let g = slot.lock().unwrap();
        if which.is_some_and(|id| id != g.id) {
            continue;
        }
        let m = g.platform.machine();
        let t = g.platform.time_stats();
        let gs = GuestStats::read(m).unwrap_or_default();
        let vals = [
            m.total_instret(),
            t.guest,
            t.monitor,
            t.host_model,
            t.idle,
            gs.frames as u64,
            gs.bytes,
            m.obs.journal().map_or(0, |j| j.payload_bytes()),
            g.sessions,
        ];
        let mut o = JsonObj::new();
        o.u64("id", g.id as u64)
            .str("health", g.health.label())
            .u64("now", m.now());
        for (k, v) in keys.iter().zip(vals) {
            o.u64(k, v);
            *tot.entry(k).or_insert(0) += v;
        }
        guests.push(o.finish());
    }
    let mut totals = JsonObj::new();
    for k in keys {
        totals.u64(k, tot.get(k).copied().unwrap_or(0));
    }
    let mut o = JsonObj::new();
    o.raw("qstats", &totals.finish());
    o.raw("guests", &format!("[{}]", guests.join(",")));
    o.finish()
}

/// Fleet `qProf`: per-symbol guest cycles summed across profiled guests
/// (deterministic order: cycles descending, then name).
fn prof_json(shared: &FarmShared, which: Option<usize>) -> String {
    let mut by_symbol: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut profiled = 0u64;
    for slot in &shared.guests {
        let g = slot.lock().unwrap();
        if which.is_some_and(|id| id != g.id) {
            continue;
        }
        let Some(prof) = g.platform.machine().obs.prof() else {
            continue;
        };
        profiled += 1;
        for (name, cycles, samples) in prof.top(usize::MAX) {
            let e = by_symbol.entry(name.to_string()).or_insert((0, 0));
            e.0 += cycles;
            e.1 += samples;
        }
    }
    let mut rows: Vec<_> = by_symbol.into_iter().collect();
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    let symbols: Vec<String> = rows
        .into_iter()
        .map(|(name, (cycles, samples))| {
            let mut o = JsonObj::new();
            o.str("symbol", &name)
                .u64("cycles", cycles)
                .u64("samples", samples);
            o.finish()
        })
        .collect();
    let mut o = JsonObj::new();
    o.u64("profiled_guests", profiled);
    o.raw("symbols", &format!("[{}]", symbols.join(",")));
    o.finish()
}

/// Fleet `qMetrics`: monitor-time host attribution summed across guests
/// with the host profiler on.
fn metrics_json(shared: &FarmShared, which: Option<usize>) -> String {
    let mut wall = 0u64;
    let mut marks = 0u64;
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    let mut profiled = 0u64;
    for slot in &shared.guests {
        let g = slot.lock().unwrap();
        if which.is_some_and(|id| id != g.id) {
            continue;
        }
        let Some(att) = g.platform.machine().obs.host_attribution() else {
            continue;
        };
        profiled += 1;
        wall += att.wall_ns;
        marks += att.marks;
        for (label, ns) in att.phases() {
            *phases.entry(label).or_insert(0) += ns;
        }
    }
    let mut ph = JsonObj::new();
    for (label, ns) in &phases {
        ph.u64(label, *ns);
    }
    let mut o = JsonObj::new();
    o.u64("profiled_guests", profiled)
        .u64("wall_ns", wall)
        .u64("marks", marks);
    o.raw("phase_ns", &ph.finish());
    o.finish()
}

/// An `rdbg::Link` over a TCP connection to a farm guest's debug socket —
/// what `dbgctl --connect` and the farm tests/bench use as the client side.
pub struct TcpLink {
    stream: TcpStream,
}

impl TcpLink {
    pub fn connect(addr: &str) -> std::io::Result<TcpLink> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // `pump` must return periodically (the debugger counts pump calls
        // against its budget), so reads time out quickly.
        stream.set_read_timeout(Some(Duration::from_millis(2)))?;
        Ok(TcpLink { stream })
    }
}

impl rdbg::Link for TcpLink {
    fn send(&mut self, bytes: &[u8]) {
        let _ = self.stream.write_all(bytes);
    }

    fn pump(&mut self) -> Vec<u8> {
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(n) => buf[..n].to_vec(),
            Err(_) => Vec::new(),
        }
    }
}

/// One-shot control request: connect, send `cmd`, read the one-line JSON
/// reply.
pub fn control_request(port: u16, cmd: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    stream.write_all(cmd.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_labels_round_trip() {
        for p in [FarmPlatform::Raw, FarmPlatform::Lvmm, FarmPlatform::Hosted] {
            assert_eq!(FarmPlatform::from_label(p.label()), Some(p));
        }
        assert_eq!(FarmPlatform::from_label("raw"), Some(FarmPlatform::Raw));
        assert_eq!(FarmPlatform::from_label("vmware"), None);
    }

    #[test]
    fn farm_is_send() {
        fn is_send<T: Send>() {}
        is_send::<GuestSlot>();
        is_send::<Farm>();
        is_send::<TcpLink>();
    }

    #[test]
    fn single_guest_farm_settles_at_horizon_and_seals_journal() {
        let cfg = FarmConfig {
            guests: vec![GuestSpec::default()],
            workers: 1,
            horizon: Some(2_000_000),
            ..FarmConfig::default()
        };
        let farm = Farm::launch(cfg).expect("launch");
        assert!(farm.wait_settled(Duration::from_secs(60)));
        let reports = farm.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].health, GuestHealth::Done);
        // `run_for` stops at the first step boundary at or past the target
        // (same as a standalone run would), so `now` may overshoot by one
        // step.
        assert!(reports[0].now >= 2_000_000 && reports[0].now < 2_100_000);
        let journal = reports[0].journal.as_ref().expect("sealed journal");
        assert!(journal.starts_with("# lwvmm journal v1"));
        // Sealed at the exact cycle the guest stopped.
        assert!(journal.contains(&format!("end {}", reports[0].now)));
    }
}
