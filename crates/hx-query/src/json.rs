//! Minimal JSON-line emission.
//!
//! The workspace has no serialization dependency (and cannot add one in
//! this build environment), so the machine-readable mode hand-rolls its
//! JSON the same way the bench exporters do — but through one shared,
//! tested helper instead of ad-hoc `format!` calls. Output is a single
//! object per line with fields in insertion order, so identical sessions
//! produce byte-identical transcripts.

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object, emitted as a single line.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a `0x`-prefixed hex string field (for addresses/PCs, where hex
    /// is the native notation).
    pub fn hex(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&format!("\"0x{v:x}\""));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_list(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Adds a pre-rendered JSON value verbatim (caller guarantees
    /// validity).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object as one line (no trailing newline).
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_objects_in_order() {
        let mut o = JsonObj::new();
        o.str("a", "x\"y").u64("b", 7).bool("c", true).null("d");
        o.u64_list("e", &[1, 2]).hex("f", 0x10).raw("g", "[]");
        assert_eq!(
            o.finish(),
            r#"{"a":"x\"y","b":7,"c":true,"d":null,"e":[1,2],"f":"0x10","g":[]}"#
        );
        assert_eq!(JsonObj::new().finish(), "{}");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\u{1}\\"), "a\\nb\\t\\u0001\\\\");
    }
}
