//! The condition-expression language.
//!
//! A tiny, total expression grammar over guest state, used by conditional
//! breakpoints, conditional watchpoints, logpoints and the monitor-side
//! "first cycle where …" search. The same string grammar travels over the
//! debug wire (hex-encoded), so host and target always agree on semantics.
//!
//! ## Grammar
//!
//! ```text
//! expr    := or
//! or      := and    { "||" and }
//! and     := cmp    { "&&" cmp }
//! cmp     := rel    { ("==" | "!=") rel }
//! rel     := bitor  { ("<" | "<=" | ">" | ">=") bitor }
//! bitor   := bitxor { "|" bitxor }
//! bitxor  := bitand { "^" bitand }
//! bitand  := shift  { "&" shift }
//! shift   := add    { ("<<" | ">>") add }
//! add     := unary  { ("+" | "-") unary }
//! unary   := ("!" | "~" | "-") unary | primary
//! primary := number | "pc" | "cycle" | "r" digits
//!          | "[" expr "]" | "b" "[" expr "]" | "h" "[" expr "]"
//!          | "(" expr ")"
//! number  := decimal | "0x" hex
//! ```
//!
//! Values are unsigned 64-bit; registers, PC and memory operands are
//! zero-extended 32-bit quantities, `cycle` is the full simulated-cycle
//! counter. Comparisons and logical operators yield `1`/`0`. Arithmetic
//! wraps; shift counts are taken modulo 64. `[e]` loads a 32-bit word,
//! `h[e]`/`b[e]` a zero-extended half/byte.
//!
//! Evaluation is fallible only through [`EvalCtx::load`]: an unmapped
//! memory operand makes the whole expression evaluate to `None`, and each
//! consumer picks its fail-safe (a conditional breakpoint stops, a
//! logpoint stays silent).

use core::fmt;

/// Binary operators, loosest-binding first (Rust precedence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR (`||`): 1 if either side is nonzero.
    Or,
    /// Logical AND (`&&`): 1 if both sides are nonzero.
    And,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Unsigned less-than (`<`).
    Lt,
    /// Unsigned less-or-equal (`<=`).
    Le,
    /// Unsigned greater-than (`>`).
    Gt,
    /// Unsigned greater-or-equal (`>=`).
    Ge,
    /// Bitwise OR (`|`).
    BitOr,
    /// Bitwise XOR (`^`).
    BitXor,
    /// Bitwise AND (`&`).
    BitAnd,
    /// Left shift (`<<`), count mod 64.
    Shl,
    /// Logical right shift (`>>`), count mod 64.
    Shr,
    /// Wrapping addition (`+`).
    Add,
    /// Wrapping subtraction (`-`).
    Sub,
}

impl BinOp {
    fn token(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::BitAnd => "&",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Add => "+",
            BinOp::Sub => "-",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Logical NOT (`!`): 1 if the operand is zero.
    Not,
    /// Bitwise NOT (`~`).
    BitNot,
    /// Two's-complement negation (`-`), on 64 bits.
    Neg,
}

impl UnOp {
    fn token(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Neg => "-",
        }
    }
}

/// A parsed condition expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A literal (decimal or `0x` hex in source).
    Num(u64),
    /// General-purpose register `r0`–`r31`, zero-extended.
    Reg(u8),
    /// The guest program counter, zero-extended.
    Pc,
    /// The simulated cycle counter.
    Cycle,
    /// A memory operand: `size` ∈ {1, 2, 4}, address truncated to 32 bits.
    Load {
        /// Access width in bytes (1, 2 or 4).
        size: u8,
        /// Address expression.
        addr: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        rhs: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Where an expression reads machine state from.
///
/// Methods take `&mut self` because some implementors (the monitor's
/// virtual-address view) walk page tables through APIs that update
/// statistics; semantically every implementation must be observation-only.
pub trait EvalCtx {
    /// General-purpose register `idx` (0–31), zero-extended.
    fn reg(&mut self, idx: u8) -> u32;
    /// The guest program counter.
    fn pc(&mut self) -> u32;
    /// The simulated cycle counter.
    fn cycle(&mut self) -> u64;
    /// Little-endian load of `size` ∈ {1, 2, 4} bytes, or `None` if the
    /// address is unmapped in this context.
    fn load(&mut self, addr: u32, size: u8) -> Option<u32>;
}

/// [`EvalCtx`] over a raw RAM image and a register file — the
/// physical-address view shared by live machines and stored checkpoints.
pub struct SliceCtx<'a> {
    bytes: &'a [u8],
    regs: [u32; 32],
    pc: u32,
    cycle: u64,
}

impl<'a> SliceCtx<'a> {
    /// A context over `bytes` (physical RAM), a register file (missing
    /// registers read as zero), a PC and a cycle counter.
    pub fn new(bytes: &'a [u8], regs: &[u32], pc: u32, cycle: u64) -> SliceCtx<'a> {
        let mut r = [0u32; 32];
        for (dst, src) in r.iter_mut().zip(regs) {
            *dst = *src;
        }
        SliceCtx {
            bytes,
            regs: r,
            pc,
            cycle,
        }
    }
}

impl EvalCtx for SliceCtx<'_> {
    fn reg(&mut self, idx: u8) -> u32 {
        self.regs.get(idx as usize).copied().unwrap_or(0)
    }

    fn pc(&mut self) -> u32 {
        self.pc
    }

    fn cycle(&mut self) -> u64 {
        self.cycle
    }

    fn load(&mut self, addr: u32, size: u8) -> Option<u32> {
        let start = addr as usize;
        let end = start.checked_add(size as usize)?;
        let bytes = self.bytes.get(start..end)?;
        let mut v = 0u32;
        for (i, b) in bytes.iter().enumerate() {
            v |= (*b as u32) << (8 * i);
        }
        Some(v)
    }
}

/// A parse failure: byte offset into the source and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Num(u64),
    Ident(String),
    Op(&'static str),
    LBracket,
    RBracket,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_digit() {
            let (val, len) = lex_number(&src[i..]).map_err(|msg| ParseError { pos: i, msg })?;
            toks.push((start, Tok::Num(val)));
            i += len;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let end = src[i..]
                .find(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
                .map_or(src.len(), |off| i + off);
            toks.push((start, Tok::Ident(src[i..end].to_string())));
            i = end;
        } else {
            let two = if i + 1 < bytes.len() {
                &src[i..i + 2]
            } else {
                ""
            };
            let tok = match two {
                "||" | "&&" | "==" | "!=" | "<=" | ">=" | "<<" | ">>" => {
                    i += 2;
                    // Map to the identical 'static spelling.
                    Tok::Op(match two {
                        "||" => "||",
                        "&&" => "&&",
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "<<" => "<<",
                        _ => ">>",
                    })
                }
                _ => {
                    i += 1;
                    match c {
                        '|' => Tok::Op("|"),
                        '^' => Tok::Op("^"),
                        '&' => Tok::Op("&"),
                        '<' => Tok::Op("<"),
                        '>' => Tok::Op(">"),
                        '+' => Tok::Op("+"),
                        '-' => Tok::Op("-"),
                        '!' => Tok::Op("!"),
                        '~' => Tok::Op("~"),
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        other => {
                            return Err(ParseError {
                                pos: start,
                                msg: format!("unexpected character `{other}`"),
                            })
                        }
                    }
                }
            };
            toks.push((start, tok));
        }
    }
    Ok(toks)
}

fn lex_number(src: &str) -> Result<(u64, usize), String> {
    let (digits, radix, prefix) = if src.starts_with("0x") || src.starts_with("0X") {
        (&src[2..], 16, 2)
    } else {
        (src, 10, 0)
    };
    let end = digits
        .find(|c: char| !c.is_ascii_hexdigit())
        .unwrap_or(digits.len());
    let body = &digits[..end];
    if body.is_empty() {
        return Err("number has no digits".to_string());
    }
    let val = u64::from_str_radix(body, radix)
        .map_err(|_| format!("bad number `{}`", &src[..prefix + end]))?;
    Ok((val, prefix + end))
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.at).map_or(self.src_len, |(p, _)| *p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(_, t)| t.clone());
        self.at += 1;
        t
    }

    fn eat_op(&mut self, ops: &[&'static str]) -> Option<&'static str> {
        if let Some(Tok::Op(op)) = self.peek() {
            if let Some(&hit) = ops.iter().find(|&&o| o == *op) {
                self.at += 1;
                return Some(hit);
            }
        }
        None
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            Err(ParseError {
                pos: self.pos(),
                msg: format!("expected {what}"),
            })
        }
    }

    fn binary_level(&mut self, level: usize) -> Result<Expr, ParseError> {
        // Loosest-binding first; each level is left-associative.
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["==", "!="],
            &["<=", ">=", "<", ">"],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary_level(level + 1)?;
        while let Some(op) = self.eat_op(LEVELS[level]) {
            let rhs = self.binary_level(level + 1)?;
            lhs = Expr::Binary {
                op: bin_op(op),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if let Some(op) = self.eat_op(&["!", "~", "-"]) {
            let rhs = self.unary()?;
            let op = match op {
                "!" => UnOp::Not,
                "~" => UnOp::BitNot,
                _ => UnOp::Neg,
            };
            return Ok(Expr::Unary {
                op,
                rhs: Box::new(rhs),
            });
        }
        self.primary()
    }

    fn load(&mut self, size: u8) -> Result<Expr, ParseError> {
        let addr = self.binary_level(0)?;
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(Expr::Load {
            size,
            addr: Box::new(addr),
        })
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::LBracket) => self.load(4),
            Some(Tok::LParen) => {
                let e = self.binary_level(0)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "pc" => Ok(Expr::Pc),
                "cycle" => Ok(Expr::Cycle),
                "b" if self.peek() == Some(&Tok::LBracket) => {
                    self.at += 1;
                    self.load(1)
                }
                "h" if self.peek() == Some(&Tok::LBracket) => {
                    self.at += 1;
                    self.load(2)
                }
                _ => {
                    if let Some(idx) = name
                        .strip_prefix('r')
                        .and_then(|d| d.parse::<u8>().ok())
                        .filter(|&i| i < 32 && name.len() <= 3)
                    {
                        Ok(Expr::Reg(idx))
                    } else {
                        Err(ParseError {
                            pos,
                            msg: format!("unknown identifier `{name}`"),
                        })
                    }
                }
            },
            _ => Err(ParseError {
                pos,
                msg: "expected an operand".to_string(),
            }),
        }
    }
}

fn bin_op(tok: &str) -> BinOp {
    match tok {
        "||" => BinOp::Or,
        "&&" => BinOp::And,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "|" => BinOp::BitOr,
        "^" => BinOp::BitXor,
        "&" => BinOp::BitAnd,
        "<<" => BinOp::Shl,
        ">>" => BinOp::Shr,
        "+" => BinOp::Add,
        _ => BinOp::Sub,
    }
}

impl Expr {
    /// Parses an expression from the wire grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first token
    /// that does not fit the grammar.
    pub fn parse(src: &str) -> Result<Expr, ParseError> {
        let toks = lex(src)?;
        let src_len = src.len();
        let mut p = Parser {
            toks,
            at: 0,
            src_len,
        };
        let e = p.binary_level(0)?;
        if p.at != p.toks.len() {
            return Err(ParseError {
                pos: p.pos(),
                msg: "trailing input after expression".to_string(),
            });
        }
        Ok(e)
    }

    /// Canonical text form: fully parenthesized, so
    /// `Expr::parse(&e.format())` reconstructs `e` exactly (the proptest
    /// round-trip property).
    pub fn format(&self) -> String {
        match self {
            Expr::Num(v) => format!("{v}"),
            Expr::Reg(i) => format!("r{i}"),
            Expr::Pc => "pc".to_string(),
            Expr::Cycle => "cycle".to_string(),
            Expr::Load { size, addr } => {
                let prefix = match size {
                    1 => "b",
                    2 => "h",
                    _ => "",
                };
                format!("{prefix}[{}]", addr.format())
            }
            Expr::Unary { op, rhs } => format!("{}({})", op.token(), rhs.format()),
            Expr::Binary { op, lhs, rhs } => {
                format!("({} {} {})", lhs.format(), op.token(), rhs.format())
            }
        }
    }

    /// Evaluates against `ctx`. `None` means a memory operand was
    /// unmapped; consumers choose their fail-safe.
    pub fn eval(&self, ctx: &mut dyn EvalCtx) -> Option<u64> {
        match self {
            Expr::Num(v) => Some(*v),
            Expr::Reg(i) => Some(ctx.reg(*i) as u64),
            Expr::Pc => Some(ctx.pc() as u64),
            Expr::Cycle => Some(ctx.cycle()),
            Expr::Load { size, addr } => {
                let a = addr.eval(ctx)? as u32;
                ctx.load(a, *size).map(|v| v as u64)
            }
            Expr::Unary { op, rhs } => {
                let v = rhs.eval(ctx)?;
                Some(match op {
                    UnOp::Not => (v == 0) as u64,
                    UnOp::BitNot => !v,
                    UnOp::Neg => v.wrapping_neg(),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                // No short-circuit: both sides must be mapped, keeping
                // evaluation order-independent and total.
                let a = lhs.eval(ctx)?;
                let b = rhs.eval(ctx)?;
                Some(match op {
                    BinOp::Or => (a != 0 || b != 0) as u64,
                    BinOp::And => (a != 0 && b != 0) as u64,
                    BinOp::Eq => (a == b) as u64,
                    BinOp::Ne => (a != b) as u64,
                    BinOp::Lt => (a < b) as u64,
                    BinOp::Le => (a <= b) as u64,
                    BinOp::Gt => (a > b) as u64,
                    BinOp::Ge => (a >= b) as u64,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::BitAnd => a & b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                })
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::TestRng;

    fn ctx<'a>(bytes: &'a [u8], regs: &[u32]) -> SliceCtx<'a> {
        SliceCtx::new(bytes, regs, 0x1000, 777)
    }

    #[test]
    fn literals_and_state() {
        let mem = [0x78, 0x56, 0x34, 0x12];
        let mut c = ctx(&mem, &[0, 42]);
        let ev = |s: &str, c: &mut SliceCtx| Expr::parse(s).unwrap().eval(c);
        assert_eq!(ev("5 + 0x10", &mut c), Some(21));
        assert_eq!(ev("r1", &mut c), Some(42));
        assert_eq!(ev("pc", &mut c), Some(0x1000));
        assert_eq!(ev("cycle", &mut c), Some(777));
        assert_eq!(ev("[0]", &mut c), Some(0x12345678));
        assert_eq!(ev("h[0]", &mut c), Some(0x5678));
        assert_eq!(ev("b[3]", &mut c), Some(0x12));
        assert_eq!(ev("[1000]", &mut c), None, "unmapped load fails");
    }

    #[test]
    fn precedence_matches_rust() {
        let mut c = ctx(&[], &[]);
        let ev = |s: &str, c: &mut SliceCtx| Expr::parse(s).unwrap().eval(c);
        // `&` binds tighter than `==`, unlike C.
        assert_eq!(ev("6 & 3 == 2", &mut c), Some(1));
        assert_eq!(ev("1 + 2 << 1", &mut c), Some((1 + 2) << 1));
        assert_eq!(ev("1 | 4 ^ 2 & 3", &mut c), Some(1 | (4 ^ (2 & 3))));
        assert_eq!(ev("2 < 3 && 3 < 2 || 1", &mut c), Some(1));
        assert_eq!(ev("10 - 2 - 3", &mut c), Some(5), "left-associative");
        assert_eq!(ev("!0 + !5", &mut c), Some(1));
        assert_eq!(ev("~0 >> 32", &mut c), Some(0xffff_ffff));
        assert_eq!(ev("-(1) + 2", &mut c), Some(1));
    }

    #[test]
    fn parse_errors_carry_position() {
        for (src, pos) in [("1 +", 3), ("r99", 0), ("(1", 2), ("[1", 2), ("1 1", 2)] {
            let err = Expr::parse(src).unwrap_err();
            assert_eq!(err.pos, pos, "{src:?} → {err}");
        }
        assert!(Expr::parse("0x").is_err());
        assert!(Expr::parse("frob").is_err());
        assert!(Expr::parse("1 $ 2").is_err());
        assert!(Expr::parse("").is_err());
    }

    /// Builds a random expression of bounded depth from the deterministic
    /// test RNG (the proptest shim has no recursive strategies).
    fn arb_expr(rng: &mut TestRng, depth: u32) -> Expr {
        let leaf = depth == 0 || rng.below(3) == 0;
        if leaf {
            match rng.below(4) {
                0 => Expr::Num(rng.next_u64() >> (rng.below(64) as u32)),
                1 => Expr::Reg(rng.below(32) as u8),
                2 => Expr::Pc,
                _ => Expr::Cycle,
            }
        } else {
            match rng.below(3) {
                0 => Expr::Load {
                    size: [1u8, 2, 4][rng.below(3) as usize],
                    addr: Box::new(arb_expr(rng, depth - 1)),
                },
                1 => Expr::Unary {
                    op: [UnOp::Not, UnOp::BitNot, UnOp::Neg][rng.below(3) as usize],
                    rhs: Box::new(arb_expr(rng, depth - 1)),
                },
                _ => {
                    const OPS: [BinOp; 15] = [
                        BinOp::Or,
                        BinOp::And,
                        BinOp::Eq,
                        BinOp::Ne,
                        BinOp::Lt,
                        BinOp::Le,
                        BinOp::Gt,
                        BinOp::Ge,
                        BinOp::BitOr,
                        BinOp::BitXor,
                        BinOp::BitAnd,
                        BinOp::Shl,
                        BinOp::Shr,
                        BinOp::Add,
                        BinOp::Sub,
                    ];
                    Expr::Binary {
                        op: OPS[rng.below(15) as usize],
                        lhs: Box::new(arb_expr(rng, depth - 1)),
                        rhs: Box::new(arb_expr(rng, depth - 1)),
                    }
                }
            }
        }
    }

    struct ArbExpr;

    impl Strategy for ArbExpr {
        type Value = Expr;
        fn generate(&self, rng: &mut TestRng) -> Expr {
            let depth = rng.below(5) as u32;
            arb_expr(rng, depth)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        #[test]
        fn format_parse_round_trip(e in ArbExpr) {
            let text = e.format();
            let back = Expr::parse(&text);
            prop_assert_eq!(back.as_ref(), Ok(&e), "{}", text);
            // Canonical form is a fixed point.
            prop_assert_eq!(back.unwrap().format(), text);
        }

        #[test]
        fn eval_is_total_and_deterministic(e in ArbExpr) {
            let mem: Vec<u8> = (0..256).map(|i| (i * 37 + 11) as u8).collect();
            let regs: Vec<u32> = (0..32).map(|i| i * 0x0101_0101).collect();
            let a = e.eval(&mut SliceCtx::new(&mem, &regs, 0x44, 9));
            let b = e.eval(&mut SliceCtx::new(&mem, &regs, 0x44, 9));
            prop_assert_eq!(a, b);
        }

        #[test]
        fn parse_never_panics(s in "\\PC{0,40}") {
            let _ = Expr::parse(&s);
        }
    }
}
