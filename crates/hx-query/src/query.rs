//! Host-side queries over recorded journals.
//!
//! These run against sealed [`Journal`]s (live or loaded from text), off
//! the simulation path: they answer "what happened when" questions whose
//! results are cycles that can drive a replay seek.

use crate::json::JsonObj;
use hx_obs::{audit, Journal, JournalEvent};

/// The first event at which two recordings disagree, per the divergence
/// auditor's stream decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergentEvent {
    /// Name of the diverging stream (`nic`, `uart`, `stub`, `log`, …).
    pub stream: String,
    /// Index of the first disagreement within that stream.
    pub index: usize,
    /// Cycle of the diverging event in journal `a`, if present there.
    pub at_a: Option<u64>,
    /// Cycle of the diverging event in journal `b`, if present there.
    pub at_b: Option<u64>,
}

/// First divergent device event between two journals, if any — the
/// earliest (by `a`-side cycle, then stream name) non-clean stream from
/// [`audit`].
pub fn first_divergent_event(a: &Journal, b: &Journal) -> Option<DivergentEvent> {
    let mut best: Option<DivergentEvent> = None;
    for s in audit(a, b) {
        let Some(d) = s.divergence else { continue };
        let hit = DivergentEvent {
            stream: s.name.to_string(),
            index: d.index,
            at_a: d.a.as_ref().map(|r| r.at),
            at_b: d.b.as_ref().map(|r| r.at),
        };
        let key = |h: &DivergentEvent| (h.at_a.unwrap_or(u64::MAX), h.stream.clone());
        if best.as_ref().is_none_or(|cur| key(&hit) < key(cur)) {
            best = Some(hit);
        }
    }
    best
}

/// Cycles of every IRQ-`irq` delivery event in `[from, to]`.
pub fn irq_deliveries(j: &Journal, irq: u32, from: u64, to: u64) -> Vec<u64> {
    j.events
        .iter()
        .filter(|e| (from..=to).contains(&e.at))
        .filter(|e| matches!(e.ev, JournalEvent::Irq { irq: i, .. } if i == irq))
        .map(|e| e.at)
        .collect()
}

/// A parsed journal query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalQuery {
    /// `irq <n> [in <from>..<to>]` — IRQ deliveries on line `n`.
    IrqCount {
        /// IRQ line.
        irq: u32,
        /// Range start (inclusive), 0 if unspecified.
        from: u64,
        /// Range end (inclusive), `u64::MAX` if unspecified.
        to: u64,
    },
    /// `first-event <stream>` — first event of a named device stream.
    FirstEvent {
        /// Stream name, as in the divergence auditor (`nic`, `stub`, …).
        stream: String,
    },
    /// `logs [<addr>]` — logpoint hits, optionally only at one address.
    Logs {
        /// Logpoint address filter.
        addr: Option<u32>,
    },
    /// `irqlat <n> [over <k>] [in <from>..<to>]` — ISR-entry cycles of
    /// IRQ-`n` dispatches whose raise→entry latency exceeded `k` cycles
    /// (`over 0`, the default, lists every matched dispatch). Answers
    /// "the first IRQ whose dispatch latency exceeded K cycles" with a
    /// seekable cycle.
    IrqLatency {
        /// IRQ line.
        irq: u32,
        /// Latency threshold in cycles (strict).
        over: u64,
        /// Range start (inclusive), 0 if unspecified.
        from: u64,
        /// Range end (inclusive), `u64::MAX` if unspecified.
        to: u64,
    },
    /// `trace [<id>]` — guest tracepoint events, optionally only one id.
    Trace {
        /// Tracepoint id filter.
        id: Option<u32>,
    },
}

/// The answer to a [`JournalQuery`]: a count, the matching cycles (capped),
/// and the first matching cycle for seek-driving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnswer {
    /// What was asked, in canonical text.
    pub query: String,
    /// Number of matching events.
    pub count: usize,
    /// Cycle of the first match, if any.
    pub first: Option<u64>,
    /// Cycles of the first matches (at most [`QueryAnswer::MAX_CYCLES`]).
    pub cycles: Vec<u64>,
}

impl QueryAnswer {
    /// Cap on explicitly listed cycles; the count is always exact.
    pub const MAX_CYCLES: usize = 64;

    /// One JSON line describing the answer.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("event", "query");
        o.str("query", &self.query);
        o.u64("count", self.count as u64);
        match self.first {
            Some(c) => o.u64("first", c),
            None => o.null("first"),
        };
        o.u64_list("cycles", &self.cycles);
        o.finish()
    }
}

fn parse_range(words: &[&str]) -> Option<(u64, u64)> {
    match words {
        [] => Some((0, u64::MAX)),
        ["in", range] => {
            let (a, b) = range.split_once("..")?;
            Some((parse_num(a)?, parse_num(b)?))
        }
        _ => None,
    }
}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl JournalQuery {
    /// Parses the text form (see variant docs).
    pub fn parse(src: &str) -> Option<JournalQuery> {
        let words: Vec<&str> = src.split_whitespace().collect();
        match words.as_slice() {
            ["irq", n, rest @ ..] => {
                let (from, to) = parse_range(rest)?;
                Some(JournalQuery::IrqCount {
                    irq: parse_num(n)? as u32,
                    from,
                    to,
                })
            }
            ["first-event", stream] => Some(JournalQuery::FirstEvent {
                stream: stream.to_string(),
            }),
            ["logs"] => Some(JournalQuery::Logs { addr: None }),
            ["logs", a] => Some(JournalQuery::Logs {
                addr: Some(parse_num(a)? as u32),
            }),
            ["irqlat", n, rest @ ..] => {
                let (over, rest) = match rest {
                    ["over", k, tail @ ..] => (parse_num(k)?, tail),
                    tail => (0, tail),
                };
                let (from, to) = parse_range(rest)?;
                Some(JournalQuery::IrqLatency {
                    irq: parse_num(n)? as u32,
                    over,
                    from,
                    to,
                })
            }
            ["trace"] => Some(JournalQuery::Trace { id: None }),
            ["trace", i] => Some(JournalQuery::Trace {
                id: Some(parse_num(i)? as u32),
            }),
            _ => None,
        }
    }

    /// Canonical text form (`parse` ∘ `format` is identity).
    pub fn format(&self) -> String {
        match self {
            JournalQuery::IrqCount { irq, from, to } => {
                if *from == 0 && *to == u64::MAX {
                    format!("irq {irq}")
                } else {
                    format!("irq {irq} in {from}..{to}")
                }
            }
            JournalQuery::FirstEvent { stream } => format!("first-event {stream}"),
            JournalQuery::Logs { addr: None } => "logs".to_string(),
            JournalQuery::Logs { addr: Some(a) } => format!("logs 0x{a:x}"),
            JournalQuery::IrqLatency {
                irq,
                over,
                from,
                to,
            } => {
                let mut s = format!("irqlat {irq}");
                if *over > 0 {
                    s.push_str(&format!(" over {over}"));
                }
                if *from != 0 || *to != u64::MAX {
                    s.push_str(&format!(" in {from}..{to}"));
                }
                s
            }
            JournalQuery::Trace { id: None } => "trace".to_string(),
            JournalQuery::Trace { id: Some(i) } => format!("trace {i}"),
        }
    }

    /// Runs the query against a sealed journal.
    pub fn run(&self, j: &Journal) -> QueryAnswer {
        let cycles: Vec<u64> = match self {
            JournalQuery::IrqCount { irq, from, to } => irq_deliveries(j, *irq, *from, *to),
            JournalQuery::FirstEvent { stream } => j
                .events
                .iter()
                .filter(|e| event_stream(&e.ev) == stream.as_str())
                .map(|e| e.at)
                .collect(),
            JournalQuery::Logs { addr } => j
                .events
                .iter()
                .filter(|e| match e.ev {
                    JournalEvent::Log { addr: a, .. } => addr.is_none_or(|want| want == a),
                    _ => false,
                })
                .map(|e| e.at)
                .collect(),
            JournalQuery::IrqLatency {
                irq,
                over,
                from,
                to,
            } => irq_latencies(j, *irq)
                .into_iter()
                .filter(|&(entry, lat)| lat > *over && (*from..=*to).contains(&entry))
                .map(|(entry, _)| entry)
                .collect(),
            JournalQuery::Trace { id } => j
                .events
                .iter()
                .filter(|e| match e.ev {
                    JournalEvent::Trace { id: i, .. } => id.is_none_or(|want| want == i),
                    _ => false,
                })
                .map(|e| e.at)
                .collect(),
        };
        QueryAnswer {
            query: self.format(),
            count: cycles.len(),
            first: cycles.first().copied(),
            cycles: cycles.into_iter().take(QueryAnswer::MAX_CYCLES).collect(),
        }
    }
}

/// `(isr_entry_cycle, raise→entry latency)` for every matched dispatch of
/// IRQ line `irq`, in journal order. Pairing mirrors the live causal
/// tracker: the earliest unmatched device raise of the line wins, and PIC
/// raises (IPIs, injected bursts) are not dispatches.
pub fn irq_latencies(j: &Journal, irq: u32) -> Vec<(u64, u64)> {
    let mut pending: Option<u64> = None;
    let mut out = Vec::new();
    for e in &j.events {
        match e.ev {
            JournalEvent::Irq { dev, irq: line } if line == irq && dev != hx_obs::Dev::Pic => {
                pending.get_or_insert(e.at);
            }
            JournalEvent::Inta { irq: line } if line == irq => {
                if let Some(raise) = pending.take() {
                    out.push((e.at, e.at - raise));
                }
            }
            _ => {}
        }
    }
    out
}

/// The auditor stream an event belongs to.
fn event_stream(e: &JournalEvent) -> &'static str {
    match e {
        JournalEvent::DebugCommand { .. } => "stub",
        JournalEvent::Fault { .. } => "fault",
        JournalEvent::Log { .. } => "log",
        other => other.dev().map_or("?", |d| d.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_obs::Dev;

    fn sample_journal() -> Journal {
        let mut j = Journal::new("lvmm");
        j.event(
            100,
            JournalEvent::Irq {
                dev: Dev::Pit,
                irq: 0,
            },
        );
        j.event(
            200,
            JournalEvent::Irq {
                dev: Dev::Nic,
                irq: 3,
            },
        );
        j.event(
            300,
            JournalEvent::Irq {
                dev: Dev::Nic,
                irq: 3,
            },
        );
        j.event(250, JournalEvent::Inta { irq: 3 });
        j.event(
            400,
            JournalEvent::Log {
                addr: 0x1000,
                value: 7,
            },
        );
        j.event(
            450,
            JournalEvent::Log {
                addr: 0x2000,
                value: 9,
            },
        );
        j.seal(1_000);
        j
    }

    #[test]
    fn irq_queries_count_and_range() {
        let j = sample_journal();
        let q = JournalQuery::parse("irq 3").unwrap();
        let a = q.run(&j);
        assert_eq!(a.count, 2);
        assert_eq!(a.first, Some(200));
        let q = JournalQuery::parse("irq 3 in 250..0x190").unwrap();
        assert_eq!(q.run(&j).cycles, vec![300]);
        assert_eq!(JournalQuery::parse(&q.format()), Some(q));
    }

    #[test]
    fn log_and_stream_queries() {
        let j = sample_journal();
        let all = JournalQuery::parse("logs").unwrap().run(&j);
        assert_eq!(all.count, 2);
        let one = JournalQuery::parse("logs 0x2000").unwrap().run(&j);
        assert_eq!(one.cycles, vec![450]);
        let pit = JournalQuery::parse("first-event pit").unwrap().run(&j);
        assert_eq!(pit.first, Some(100));
        assert!(one.to_json().contains("\"first\":450"));
    }

    #[test]
    fn irq_latency_queries_pair_raise_with_entry() {
        use hx_obs::TraceOp;
        let mut j = Journal::new("lvmm");
        // Two dispatches of line 0: 50-cycle and 300-cycle latency; the
        // second raise (while one is pending) is absorbed into the first
        // flow, earliest-raise-wins. A PIC raise is not a dispatch.
        j.event(
            100,
            JournalEvent::Irq {
                dev: Dev::Pit,
                irq: 0,
            },
        );
        j.event(150, JournalEvent::Inta { irq: 0 });
        j.event(
            200,
            JournalEvent::Irq {
                dev: Dev::Pic,
                irq: 0,
            },
        );
        j.event(
            400,
            JournalEvent::Irq {
                dev: Dev::Pit,
                irq: 0,
            },
        );
        j.event(
            500,
            JournalEvent::Irq {
                dev: Dev::Pit,
                irq: 0,
            },
        );
        j.event(700, JournalEvent::Inta { irq: 0 });
        j.event(
            800,
            JournalEvent::Trace {
                op: TraceOp::Begin,
                id: 7,
            },
        );
        j.event(
            900,
            JournalEvent::Trace {
                op: TraceOp::End,
                id: 7,
            },
        );
        j.seal(1_000);

        assert_eq!(irq_latencies(&j, 0), vec![(150, 50), (700, 300)]);
        let all = JournalQuery::parse("irqlat 0").unwrap();
        assert_eq!(all.run(&j).cycles, vec![150, 700]);
        assert_eq!(JournalQuery::parse(&all.format()), Some(all));
        // "First dispatch over 100 cycles" — the canonical causal question.
        let slow = JournalQuery::parse("irqlat 0 over 100").unwrap();
        assert_eq!(slow.run(&j).first, Some(700));
        assert_eq!(JournalQuery::parse(&slow.format()), Some(slow));
        let ranged = JournalQuery::parse("irqlat 0 over 10 in 0..200").unwrap();
        assert_eq!(ranged.run(&j).cycles, vec![150]);
        assert_eq!(JournalQuery::parse(&ranged.format()), Some(ranged.clone()));
        assert!(ranged.run(&j).to_json().contains("\"first\":150"));

        let traces = JournalQuery::parse("trace").unwrap();
        assert_eq!(traces.run(&j).cycles, vec![800, 900]);
        let one = JournalQuery::parse("trace 7").unwrap();
        assert_eq!(one.run(&j).count, 2);
        assert_eq!(JournalQuery::parse(&one.format()), Some(one));
        assert_eq!(JournalQuery::parse("trace 8").unwrap().run(&j).count, 0);
    }

    #[test]
    fn divergence_picks_earliest_stream() {
        let a = sample_journal();
        let mut b = sample_journal();
        b.events.remove(1); // drop the first nic irq
                            // The audit compares payload sequences, so the two identical IRQs
                            // pair up and the divergence is the length-only tail at index 1.
        let hit = first_divergent_event(&a, &b).unwrap();
        assert_eq!(hit.stream, "nic");
        assert_eq!(hit.index, 1);
        assert_eq!(hit.at_a, Some(300));
        assert_eq!(hit.at_b, None);
        // A payload change diverges at its own index.
        let mut c = sample_journal();
        c.events[1].ev = JournalEvent::Irq {
            dev: Dev::Nic,
            irq: 4,
        };
        let hit = first_divergent_event(&a, &c).unwrap();
        assert_eq!((hit.stream.as_str(), hit.index), ("nic", 0));
        assert_eq!(first_divergent_event(&a, &a), None);
    }

    #[test]
    fn bad_queries_do_not_parse() {
        for s in [
            "",
            "irq",
            "irq x",
            "irq 3 in 5",
            "logs 0xzz",
            "frobnicate",
            "irqlat",
            "irqlat x",
            "irqlat 0 over",
            "irqlat 0 over x",
            "irqlat 0 above 5",
            "trace 0xzz",
            "trace 1 2",
        ] {
            assert_eq!(JournalQuery::parse(s), None, "{s:?}");
        }
    }
}
