//! # hx-query — programmatic queries over the flight recorder
//!
//! The repository records everything a debugging session could want — a
//! nondeterministic-input journal, a device-event stream, periodic
//! checkpoints, a trace ring — but until this crate the only way to *use*
//! the recording was interactively. `hx-query` turns the recording into a
//! queryable database and the debug stub into a scriptable instrument:
//!
//! * [`Expr`] — a small, total condition language over machine state
//!   (registers, PC, the cycle counter, memory operands) shared by
//!   conditional breakpoints, conditional watchpoints, logpoints and the
//!   monitor-side "first cycle where …" search. Expressions evaluate
//!   against anything that implements [`EvalCtx`]; [`SliceCtx`] adapts a
//!   raw RAM image + register file (live machines and stored checkpoints
//!   alike).
//! * [`JournalQuery`] — host-side queries over a recorded
//!   [`hx_obs::Journal`]: IRQ deliveries in a cycle range, the first event
//!   of a device stream, logpoint hits, raise→ISR-entry dispatch latencies
//!   (`irqlat n over k` answers "the first IRQ whose dispatch took more
//!   than k cycles"), guest tracepoint hits, and the first divergent event
//!   between two recordings (via the divergence auditor).
//! * [`json`] — tiny hand-rolled JSON-line helpers so `dbgctl` and
//!   `lwvmm-run --query-json` emit machine-readable output without pulling
//!   a serialization dependency into the workspace.
//!
//! Everything here is deterministic and observation-only: evaluating an
//! expression reads state, never mutates it, so armed logpoints and
//! queries cannot perturb a recorded timeline.

pub mod expr;
pub mod json;
pub mod query;

pub use expr::{BinOp, EvalCtx, Expr, ParseError, SliceCtx, UnOp};
pub use query::{
    first_divergent_event, irq_deliveries, irq_latencies, DivergentEvent, JournalQuery, QueryAnswer,
};
