//! Deterministic fault injection for the lwvmm reproduction.
//!
//! The paper's survivability claim — the lightweight monitor's debug stub
//! stays responsive while the guest misbehaves — is only testable if the
//! guest (and the debug link) can be made to misbehave *on purpose* and
//! *reproducibly*. This crate provides the two deterministic fault sources:
//!
//! - **Guest-side faults** ([`FaultPlan`] / [`FaultInjector`]): wild writes
//!   from app and kernel contexts, IRQ storms, DMA misdirects, and disk/NIC
//!   error completions. The injector is pure state driven by a seeded
//!   xorshift PRNG and the *simulated* clock — `hx-machine` polls it from
//!   its event queue, so a campaign is a function of `(program, seed)` and
//!   replays byte-identically through the flight recorder.
//! - **Link-side faults** ([`LinkFaults`]): byte flips, drops, duplication
//!   and truncation applied to the rdbg serial channel, for exercising the
//!   debugger's retransmit/timeout/backoff policy.
//!
//! Nothing here reads host time or global randomness; every decision comes
//! from [`XorShift64`] seeded by the plan. The crate is dependency-free so
//! both `hx-machine` (below the monitors) and `rdbg` (beside them) can use
//! it without cycles.

/// Seeded xorshift64* PRNG: tiny, fast, and good enough for fault spacing
/// and address scattering. Deterministic across platforms and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed; a zero seed is remapped (xorshift
    /// has a fixed point at zero).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32-bit value (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// True with probability `num / 10_000` (basis points).
    pub fn chance_bp(&mut self, num: u32) -> bool {
        self.below(10_000) < num as u64
    }
}

/// The guest-side fault classes of the survivability matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A stray store from application context into guest memory.
    WildWriteApp,
    /// A stray store from kernel context into the kernel image / low memory.
    WildWriteKernel,
    /// A burst of spurious device interrupts.
    IrqStorm,
    /// A device DMA landing at the wrong address.
    DmaMisdirect,
    /// A disk controller reporting a spurious error completion.
    DiskError,
    /// The NIC reporting a spurious error completion.
    NicError,
    /// A lost update on a shared counter: the classic unsynchronized
    /// read-modify-write race between cores. On an SMP guest the injection
    /// models core B's stale write-back clobbering core A's increment; the
    /// damage is silent (no trap) and only observable by comparing the
    /// counter against the deterministic replay — which is exactly how the
    /// debugger catches it (seek to the first divergent cycle).
    RacyIncrement,
}

impl FaultKind {
    /// Number of fault classes.
    pub const COUNT: usize = 7;

    /// Every class, in matrix order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::WildWriteApp,
        FaultKind::WildWriteKernel,
        FaultKind::IrqStorm,
        FaultKind::DmaMisdirect,
        FaultKind::DiskError,
        FaultKind::NicError,
        FaultKind::RacyIncrement,
    ];

    /// Stable index for stats arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::WildWriteApp => 0,
            FaultKind::WildWriteKernel => 1,
            FaultKind::IrqStorm => 2,
            FaultKind::DmaMisdirect => 3,
            FaultKind::DiskError => 4,
            FaultKind::NicError => 5,
            FaultKind::RacyIncrement => 6,
        }
    }

    /// Stable wire/trace code (also the `E` event code in journals).
    pub fn code(self) -> u8 {
        self.index() as u8
    }

    /// Class from a trace code, if valid.
    pub fn from_code(code: u8) -> Option<FaultKind> {
        FaultKind::ALL.get(code as usize).copied()
    }

    /// Human-readable label (used in JSON and CLI arguments).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WildWriteApp => "wild-write-app",
            FaultKind::WildWriteKernel => "wild-write-kernel",
            FaultKind::IrqStorm => "irq-storm",
            FaultKind::DmaMisdirect => "dma-misdirect",
            FaultKind::DiskError => "disk-error",
            FaultKind::NicError => "nic-error",
            FaultKind::RacyIncrement => "racy-increment",
        }
    }

    /// Class from its label, if valid.
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One concrete fault the machine should apply now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Store `val` at physical address `addr` (word-aligned by the machine).
    WildWrite {
        /// Target physical address.
        addr: u32,
        /// Value to store.
        val: u32,
    },
    /// Assert every IRQ line whose bit is set in `lines`.
    IrqBurst {
        /// Bitmask of IRQ lines 0..8.
        lines: u8,
    },
    /// Splat a deterministic pattern (see [`splat_pattern`]) at `addr`.
    DmaSplat {
        /// Target physical address.
        addr: u32,
        /// Seed for the pattern bytes.
        seed: u64,
    },
    /// Force an error completion on disk unit `unit`.
    DiskError {
        /// Disk unit index.
        unit: u8,
    },
    /// Force a NIC error completion.
    NicError,
    /// Replay a stale value over the shared counter at `addr`: the machine
    /// reads the current word and writes back `val - 1` (a lost update),
    /// exactly what an unsynchronized increment race leaves behind.
    RacyIncrement {
        /// Physical address of the shared counter word.
        addr: u32,
    },
}

/// A planned fault: which class it belongs to and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// The matrix class.
    pub kind: FaultKind,
    /// The concrete operation.
    pub op: FaultOp,
}

/// Bytes a misdirected DMA writes: 64 deterministic bytes from `seed`.
pub fn splat_pattern(seed: u64) -> [u8; 64] {
    let mut rng = XorShift64::new(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut buf = [0u8; 64];
    for chunk in buf.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    buf
}

/// A deterministic fault campaign: which classes fire, how often, and where
/// wild writes are allowed to land.
///
/// The address fields model the paper's protection story rather than police
/// it: wild *attempts* are drawn from `[0, wild_span)`, but the machine only
/// applies those below `wild_limit` — attempts at or above it are **blocked**
/// and surface as protection exits. Under the monitors, `wild_limit` is the
/// monitor base (guest-context stores architecturally cannot reach monitor
/// memory); on raw hardware it equals `wild_span`, so everything lands —
/// which is exactly why the raw platform dies and the monitored one does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; the whole campaign is a function of this and the clock.
    pub seed: u64,
    /// Enabled fault classes (empty plans inject nothing).
    pub kinds: Vec<FaultKind>,
    /// Mean cycles between injections (jittered ±50%).
    pub period: u64,
    /// Cycles before the first injection (lets a workload warm up first).
    pub initial_delay: u64,
    /// Wild writes and DMA misdirects aim anywhere in `[0, wild_span)`.
    pub wild_span: u32,
    /// Attempts at or above this address are blocked (protection model).
    pub wild_limit: u32,
    /// Kernel-context wild writes land in `[0, kernel_limit)`.
    pub kernel_limit: u32,
    /// IRQ lines an [`FaultOp::IrqBurst`] asserts (bitmask; 0 = let the
    /// machine pick its default storm set).
    pub storm_lines: u8,
    /// Number of disk units error completions may target.
    pub disk_units: u8,
    /// Physical address of the shared counter a
    /// [`FaultKind::RacyIncrement`] clobbers.
    pub race_addr: u32,
}

impl FaultPlan {
    /// A plan with every guest-side class enabled and library defaults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            kinds: FaultKind::ALL.to_vec(),
            period: 150_000,
            initial_delay: 0,
            wild_span: 1 << 20,
            wild_limit: 1 << 20,
            kernel_limit: 64 << 10,
            storm_lines: 0,
            disk_units: 3,
            race_addr: 0x900,
        }
    }

    /// Restricts the plan to a single class.
    pub fn only(mut self, kind: FaultKind) -> FaultPlan {
        self.kinds = vec![kind];
        self
    }

    /// Sets the mean injection period in cycles.
    pub fn period(mut self, cycles: u64) -> FaultPlan {
        self.period = cycles.max(1);
        self
    }

    /// Sets the delay before the first injection.
    pub fn initial_delay(mut self, cycles: u64) -> FaultPlan {
        self.initial_delay = cycles;
        self
    }

    /// Sets the wild-write attempt span and applied limit.
    pub fn wild(mut self, span: u32, limit: u32) -> FaultPlan {
        self.wild_span = span;
        self.wild_limit = limit.min(span);
        self
    }

    /// Sets the shared-counter address a racy increment clobbers.
    pub fn race(mut self, addr: u32) -> FaultPlan {
        self.race_addr = addr & !3;
        self
    }
}

/// Per-class campaign counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults applied, indexed by [`FaultKind::index`].
    pub injected: [u64; FaultKind::COUNT],
    /// Wild attempts blocked by the protection model (`addr >= wild_limit`).
    pub blocked: u64,
}

impl FaultStats {
    /// Faults applied for one class.
    pub fn injected_for(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults applied across classes.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// The stateful injector a machine polls from its event queue.
///
/// `Clone` + `PartialEq` so it snapshots with the machine: a flight-recorder
/// checkpoint restores the PRNG mid-campaign and replays the remaining
/// faults identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: XorShift64,
    /// Campaign counters.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let rng = XorShift64::new(plan.seed);
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The campaign plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cycles until the first injection.
    pub fn first_delay(&mut self) -> u64 {
        self.plan.initial_delay + self.next_delay()
    }

    /// Cycles until the next injection: `period` jittered to `[½·p, 1½·p)`.
    pub fn next_delay(&mut self) -> u64 {
        self.plan.period / 2 + self.rng.below(self.plan.period) + 1
    }

    /// Draws the next planned fault, updating per-class counters. Returns
    /// `None` when no classes are enabled.
    pub fn next_fault(&mut self) -> Option<PlannedFault> {
        if self.plan.kinds.is_empty() {
            return None;
        }
        let kind = self.plan.kinds[self.rng.below(self.plan.kinds.len() as u64) as usize];
        let op = match kind {
            FaultKind::WildWriteApp => FaultOp::WildWrite {
                addr: self.rng.below(self.plan.wild_span.max(4) as u64) as u32 & !3,
                val: self.rng.next_u32(),
            },
            FaultKind::WildWriteKernel => FaultOp::WildWrite {
                addr: self.rng.below(self.plan.kernel_limit.max(4) as u64) as u32 & !3,
                val: self.rng.next_u32(),
            },
            FaultKind::IrqStorm => FaultOp::IrqBurst {
                lines: self.plan.storm_lines,
            },
            FaultKind::DmaMisdirect => FaultOp::DmaSplat {
                addr: self.rng.below(self.plan.wild_span.max(4) as u64) as u32 & !3,
                seed: self.rng.next_u64(),
            },
            FaultKind::DiskError => FaultOp::DiskError {
                unit: self.rng.below(self.plan.disk_units.max(1) as u64) as u8,
            },
            FaultKind::NicError => FaultOp::NicError,
            FaultKind::RacyIncrement => FaultOp::RacyIncrement {
                addr: self.plan.race_addr,
            },
        };
        self.stats.injected[kind.index()] += 1;
        Some(PlannedFault { kind, op })
    }

    /// True when a wild attempt at `addr` must be blocked by the protection
    /// model; updates the blocked counter when it is.
    pub fn check_wild(&mut self, addr: u32) -> bool {
        if addr >= self.plan.wild_limit {
            self.stats.blocked += 1;
            false
        } else {
            true
        }
    }
}

/// Link-fault probabilities, in basis points (1/10_000) per byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Chance a byte has one bit flipped.
    pub flip_bp: u32,
    /// Chance a byte is dropped.
    pub drop_bp: u32,
    /// Chance a byte is duplicated.
    pub dup_bp: u32,
    /// Chance the rest of a chunk is truncated at this byte.
    pub trunc_bp: u32,
}

impl LinkFaultConfig {
    /// A lossy-but-workable line: mostly flips, occasional drops/dups.
    pub fn lossy(seed: u64) -> LinkFaultConfig {
        LinkFaultConfig {
            seed,
            flip_bp: 40,
            drop_bp: 20,
            dup_bp: 20,
            trunc_bp: 5,
        }
    }

    /// A clean line (all probabilities zero) — useful as a control.
    pub fn clean(seed: u64) -> LinkFaultConfig {
        LinkFaultConfig {
            seed,
            flip_bp: 0,
            drop_bp: 0,
            dup_bp: 0,
            trunc_bp: 0,
        }
    }
}

/// Counters for what the mangler actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes offered to the mangler.
    pub bytes: u64,
    /// Bytes with a flipped bit.
    pub flipped: u64,
    /// Bytes dropped.
    pub dropped: u64,
    /// Bytes duplicated.
    pub duplicated: u64,
    /// Chunk truncations.
    pub truncated: u64,
}

/// A deterministic byte-stream mangler for the serial debug channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFaults {
    cfg: LinkFaultConfig,
    rng: XorShift64,
    /// What the mangler has done so far.
    pub stats: LinkStats,
}

impl LinkFaults {
    /// Creates a mangler from a config.
    pub fn new(cfg: LinkFaultConfig) -> LinkFaults {
        LinkFaults {
            cfg,
            rng: XorShift64::new(cfg.seed),
            stats: LinkStats::default(),
        }
    }

    /// Applies flips/drops/dups/truncation to one chunk of line traffic.
    pub fn mangle(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            self.stats.bytes += 1;
            if self.cfg.trunc_bp > 0 && self.rng.chance_bp(self.cfg.trunc_bp) {
                self.stats.truncated += 1;
                break;
            }
            if self.cfg.drop_bp > 0 && self.rng.chance_bp(self.cfg.drop_bp) {
                self.stats.dropped += 1;
                continue;
            }
            let b = if self.cfg.flip_bp > 0 && self.rng.chance_bp(self.cfg.flip_bp) {
                self.stats.flipped += 1;
                b ^ (1 << self.rng.below(8))
            } else {
                b
            };
            out.push(b);
            if self.cfg.dup_bp > 0 && self.rng.chance_bp(self.cfg.dup_bp) {
                self.stats.duplicated += 1;
                out.push(b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_varied() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let mut c = XorShift64::new(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        let mut r = XorShift64::new(0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn kind_codes_and_labels_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_code(kind.code()), Some(kind));
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_code(200), None);
        assert_eq!(FaultKind::from_label("nope"), None);
    }

    #[test]
    fn injector_streams_are_reproducible() {
        let plan = FaultPlan::new(7).wild(1 << 20, 1 << 19);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..256 {
            assert_eq!(a.next_fault(), b.next_fault());
            assert_eq!(a.next_delay(), b.next_delay());
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.total() == 256);
    }

    #[test]
    fn injector_clone_resumes_mid_stream() {
        // The property snapshots rely on: cloning mid-campaign and
        // continuing produces the same tail as the original.
        let mut a = FaultInjector::new(FaultPlan::new(99));
        for _ in 0..10 {
            a.next_fault();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_fault(), b.next_fault());
        }
    }

    #[test]
    fn wild_targets_respect_plan_bounds() {
        let plan = FaultPlan::new(3)
            .only(FaultKind::WildWriteKernel)
            .wild(1 << 20, 1 << 19);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..200 {
            match inj.next_fault().unwrap().op {
                FaultOp::WildWrite { addr, .. } => {
                    assert!(addr < 64 << 10, "kernel writes stay in the kernel image");
                    assert_eq!(addr & 3, 0);
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        // Blocking: addresses above the limit are rejected and counted.
        assert!(inj.check_wild(0x1000));
        assert!(!inj.check_wild(1 << 19));
        assert_eq!(inj.stats.blocked, 1);
    }

    #[test]
    fn jittered_delays_stay_in_band() {
        let mut inj = FaultInjector::new(FaultPlan::new(5).period(1000));
        for _ in 0..500 {
            let d = inj.next_delay();
            assert!((500..=1500).contains(&d), "delay {d} out of band");
        }
    }

    #[test]
    fn splat_pattern_is_stable() {
        assert_eq!(splat_pattern(1), splat_pattern(1));
        assert_ne!(splat_pattern(1), splat_pattern(2));
    }

    #[test]
    fn clean_link_is_identity() {
        let mut lf = LinkFaults::new(LinkFaultConfig::clean(1));
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(lf.mangle(&data), data);
        assert_eq!(lf.stats.bytes, 256);
        assert_eq!(lf.stats.flipped + lf.stats.dropped + lf.stats.duplicated, 0);
    }

    #[test]
    fn lossy_link_mangles_deterministically() {
        let mut a = LinkFaults::new(LinkFaultConfig::lossy(11));
        let mut b = LinkFaults::new(LinkFaultConfig::lossy(11));
        let data = vec![0xa5u8; 4096];
        let (ma, mb) = (a.mangle(&data), b.mangle(&data));
        assert_eq!(ma, mb);
        assert_eq!(a.stats, b.stats);
        // At these rates something must have happened over 4 KiB.
        assert!(a.stats.flipped + a.stats.dropped + a.stats.duplicated + a.stats.truncated > 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mangle_never_grows_beyond_double(seed in any::<u64>(), len in 0usize..512) {
                let mut lf = LinkFaults::new(LinkFaultConfig::lossy(seed));
                let data = vec![0x42u8; len];
                let out = lf.mangle(&data);
                prop_assert!(out.len() <= 2 * len);
            }

            #[test]
            fn below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
                let mut rng = XorShift64::new(seed);
                for _ in 0..32 {
                    prop_assert!(rng.below(bound) < bound);
                }
            }
        }
    }
}
