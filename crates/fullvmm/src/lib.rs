//! `hosted-vmm`: a VMware-Workstation-4-style **hosted full virtual machine
//! monitor** — the conventional baseline the paper compares against.
//!
//! Architecture (after Sugerman et al., *Virtualizing I/O Devices on VMware
//! Workstation's Hosted Virtual Machine Monitor*, USENIX ATC 2001 — the
//! paper's own reference \[2\]):
//!
//! * The guest kernel is deprivileged and shadow-paged exactly like under
//!   the lightweight monitor (this crate reuses `lvmm`'s virtual CPU and
//!   shadow pager — the two monitors differ in *device policy*, not in CPU
//!   virtualization).
//! * **Every** device page is emulated. The disk controller and the NIC —
//!   passthrough under the lightweight monitor — are full software models
//!   here ([`vdev`]), so every register access the guest driver makes is a
//!   trap-and-emulate exit.
//! * Device I/O is relayed through a modeled **host OS**: each transfer
//!   pays world switches between the monitor and host contexts, a host
//!   stack/driver traversal, and an extra data copy through host bounce
//!   buffers ([`costs`]). The real (simulated) devices are owned by the
//!   host model and programmed from host memory.
//!
//! The result, as in the paper's Fig. 3.1, is correct but slow I/O: the
//! same guest OS image boots and streams, at a fraction of the rate.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hx_machine::{Machine, MachineConfig, Platform};
//! use hosted_vmm::HostedPlatform;
//!
//! let program = hx_asm::assemble(
//!     "start:  li t0, 7\n halt: j halt\n",
//! )?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load_program(&program);
//! let mut vmm = HostedPlatform::new(machine, program.base());
//! vmm.run_for(10_000);
//! assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R10), 7);
//! # Ok(())
//! # }
//! ```

pub mod costs;
pub mod platform;
pub mod vdev;

pub use platform::{HostedConfig, HostedPlatform, HostedStats};

/// Compile-time proof the hosted monitor stays [`Send`] — the debug farm
/// schedules hosted guests onto worker threads like any other platform.
#[allow(dead_code)]
fn assert_send_types() {
    fn is_send<T: Send>() {}
    is_send::<HostedPlatform>();
}
