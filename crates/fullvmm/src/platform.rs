//! `HostedPlatform`: the guest under the hosted full monitor.
//!
//! CPU virtualization (ring compression, virtual CSRs, shadow paging) is
//! identical to the lightweight monitor — those components are reused from
//! the `lvmm` crate. The difference is device policy: **nothing** is passed
//! through. Every device page the guest touches is emulated, and disk/NIC
//! data is relayed through the modeled host OS with world switches, host
//! stack costs and extra copies ([`crate::costs`]).

use crate::costs;
use crate::vdev::{VDisk, VNic, DISK_BOUNCE_SECTORS, HOST_BUF_SIZE, HOST_RING_LEN};
use hx_cpu::csr::{Csr, Status};
use hx_cpu::isa::{Instr, LoadKind, StoreKind, SysOp};
use hx_cpu::mmu::{pte, Access, PAGE_MASK};
use hx_cpu::trap::{Cause, Trap};
use hx_cpu::{MemSize, Mode};
use hx_machine::engine::{ExitPolicy, ProgressGuard};
use hx_machine::platform::PlatformStep;
use hx_machine::{map, smp, Machine, Platform, TimeBucket, TimeStats};
use hx_obs::{EventKind, ExitCause, HostPhase};
use lvmm::chipset::VChipset;
use lvmm::shadow::{classify, guest_walk, GuestWalkErr, PageClass, ShadowPager};
use lvmm::vcpu::VCpu;

/// Hosted-monitor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostedConfig {
    /// RAM reserved for the monitor + host OS model (shadow tables, bounce
    /// buffers, host device rings).
    pub host_mem: u32,
}

impl Default for HostedConfig {
    fn default() -> Self {
        HostedConfig {
            host_mem: 4 * 1024 * 1024,
        }
    }
}

/// Exit and relay counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostedStats {
    /// Privileged-instruction emulations.
    pub exits_privileged: u64,
    /// Emulated device-register accesses (every device!).
    pub exits_mmio: u64,
    /// Shadow fills.
    pub exits_shadow: u64,
    /// Real interrupts taken by the monitor/host.
    pub exits_irq: u64,
    /// Virtual interrupts injected into the guest.
    pub irqs_injected: u64,
    /// Guest faults re-injected.
    pub faults_injected: u64,
    /// World switches performed by the host relay (derived from costs).
    pub host_relay_ops: u64,
    /// Protection violations blocked.
    pub protection_violations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Running,
    GuestIdle,
}

/// The hosted full-VMM platform (see the [module docs](self)).
#[derive(Debug)]
pub struct HostedPlatform {
    machine: Machine,
    vcpu: VCpu,
    /// Seat storage for every core's virtual CPU (`vcpus[cur_core]` holds a
    /// stale placeholder while that core's state is in `self.vcpu`).
    vcpus: Vec<VCpu>,
    /// The core whose virtual CPU is in `self.vcpu`.
    cur_core: usize,
    /// Per-core pending virtual-IPI line masks.
    vipi: Vec<u8>,
    shadow: ShadowPager,
    chipset: VChipset,
    vdisk: VDisk,
    vnic: VNic,
    stats: TimeStats,
    hstats: HostedStats,
    state: RunState,
    monitor_base: u32,
    ram_size: u32,
    progress: ProgressGuard,
}

impl HostedPlatform {
    /// Installs the hosted monitor and prepares the guest to boot at
    /// `entry` (image already loaded).
    ///
    /// # Panics
    ///
    /// Panics if RAM is too small for the host region.
    pub fn new(machine: Machine, entry: u32) -> HostedPlatform {
        Self::with_config(machine, entry, HostedConfig::default())
    }

    /// [`HostedPlatform::new`] with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if RAM is too small for the host region.
    pub fn with_config(mut machine: Machine, entry: u32, cfg: HostedConfig) -> HostedPlatform {
        let ram_size = machine.config().ram_size as u32;
        assert!(cfg.host_mem < ram_size, "host region exceeds RAM");
        let monitor_base = ram_size - cfg.host_mem;

        // Host memory layout: shadow pool, then bounce/ring area.
        let shadow_end = monitor_base + 2 * 1024 * 1024;
        assert!(shadow_end < ram_size, "host region too small");
        let mut cursor = shadow_end;
        let mut take = |bytes: u32| {
            let a = cursor;
            cursor += bytes;
            assert!(cursor <= ram_size, "host region layout overflow");
            a
        };
        let disk_bounce = [
            take(DISK_BOUNCE_SECTORS * 512),
            take(DISK_BOUNCE_SECTORS * 512),
            take(DISK_BOUNCE_SECTORS * 512),
        ];
        let host_ring = take(HOST_RING_LEN * 16);
        let host_bufs = take(HOST_RING_LEN * HOST_BUF_SIZE);

        let mut shadow = ShadowPager::new(monitor_base, shadow_end);
        machine.cpu.set_mode(Mode::User);
        machine.cpu.set_pc(entry);
        machine.cpu.write_csr(Csr::Status, Status::IE);
        let root = shadow.root_for(&mut machine.mem, 0, Mode::Supervisor);
        machine.cpu.write_csr(Csr::Ptbr, root | 1);
        // Secondary cores boot deprivileged behind the same identity
        // shadow; the startup IPI gives them their PC.
        let cores = machine.num_cores();
        for i in 1..cores {
            let c = machine.core_mut(i);
            c.set_mode(Mode::User);
            c.write_csr(Csr::Status, Status::IE);
            c.write_csr(Csr::Ptbr, root | 1);
        }

        let vnic = VNic::new(&mut machine, host_ring, host_bufs);
        HostedPlatform {
            machine,
            vcpu: VCpu::new(),
            vcpus: vec![VCpu::new(); cores],
            cur_core: 0,
            vipi: vec![0; cores],
            shadow,
            chipset: VChipset::new(),
            vdisk: VDisk::new(disk_bounce),
            vnic,
            stats: TimeStats::new(),
            hstats: HostedStats::default(),
            state: RunState::Running,
            monitor_base,
            ram_size,
            progress: ProgressGuard::new(),
        }
    }

    /// Monitor/host counters.
    pub fn hosted_stats(&self) -> HostedStats {
        self.hstats
    }

    /// The guest's virtual CPU (tests/diagnostics).
    pub fn vcpu(&self) -> &VCpu {
        &self.vcpu
    }

    /// Frames the virtual NIC relayed to the wire.
    pub fn relayed_tx_frames(&self) -> u64 {
        self.vnic.tx_frames
    }

    /// Injects a frame from the outside world into the guest's virtual RX
    /// ring via the host model.
    pub fn inject_guest_rx(&mut self, frame: &[u8]) {
        // This path bypasses `Machine::nic_inject_rx` (frames enter through
        // the host model, not the passthrough NIC), so it must journal the
        // nondeterministic input itself.
        if self.machine.obs.journaling() {
            let now = self.machine.now();
            self.machine
                .obs
                .journal_input(now, hx_obs::JournalInput::NicRx(frame.to_vec()));
        }
        let (ok, host) = self.vnic.deliver_rx(&mut self.machine, frame);
        self.consume_host(host);
        if ok {
            self.chipset.vpic.assert_irq(map::irq::NIC_RX);
            self.maybe_inject_irq();
        }
    }

    fn consume_monitor(&mut self, cycles: u64) {
        self.consume(TimeBucket::Monitor, cycles);
    }

    fn consume_host(&mut self, cycles: u64) {
        if cycles > 0 {
            self.consume(TimeBucket::HostModel, cycles);
            self.hstats.host_relay_ops += 1;
            // Every relay op is one `host-relay` histogram entry: the cost
            // of bouncing a device operation through the modeled host OS.
            self.record_exit(ExitCause::HostRelay, cycles);
        }
    }

    fn shadow_key(&self) -> u32 {
        if self.vcpu.paging_enabled() {
            self.vcpu.ptbr
        } else {
            0
        }
    }

    fn activate_shadow(&mut self) {
        let key = self.shadow_key();
        let root = self
            .shadow
            .root_for(&mut self.machine.mem, key, self.vcpu.vmode);
        self.machine.cpu.write_csr(Csr::Ptbr, root | 1);
    }

    fn inject_guest_trap(&mut self, cause: Cause, epc: u32, tval: u32) {
        let vcause = self.vcpu.virtual_cause(cause);
        let handler = self.vcpu.enter_trap(vcause, epc, tval);
        self.activate_shadow();
        self.machine.cpu.set_pc(handler);
        self.consume_monitor(lvmm::costs::INJECT_TRAP);
        self.hstats.faults_injected += 1;
    }

    /// Aligns the monitor's per-core virtual CPU with the machine's active
    /// core (see the lvmm implementation for the scheme). No-op on
    /// single-core.
    fn sync_core(&mut self) {
        let active = self.machine.active_core();
        if active == self.cur_core {
            return;
        }
        let prev = self.cur_core;
        std::mem::swap(&mut self.vcpu, &mut self.vcpus[prev]);
        std::mem::swap(&mut self.vcpu, &mut self.vcpus[active]);
        self.cur_core = active;
        self.activate_shadow();
    }

    /// Re-latches a consumed real IPI as a virtual one for the active core.
    fn handle_ipi(&mut self, line: u8) {
        self.consume_monitor(costs::EXIT_BASE);
        self.record_exit(ExitCause::IrqReflect, costs::EXIT_BASE);
        self.hstats.exits_irq += 1;
        self.vipi[self.cur_core] |= 1 << line;
        self.maybe_inject_irq();
    }

    fn maybe_inject_irq(&mut self) {
        if !self.vcpu.interrupts_enabled() {
            return;
        }
        // Virtual IPIs outrank the virtual PIC; the PIC wires to core 0.
        let pending = self.vipi[self.cur_core];
        if pending != 0 {
            let line = pending.trailing_zeros() as u8;
            self.vipi[self.cur_core] &= !(1 << line);
            let epc = self.machine.cpu.pc();
            let vector = smp::VECTOR_BASE + line;
            let handler = self.vcpu.enter_trap(Cause::Interrupt, epc, vector as u32);
            self.activate_shadow();
            self.machine.cpu.set_pc(handler);
            self.consume_monitor(lvmm::costs::INJECT_TRAP);
            self.record_exit(ExitCause::IrqInject, lvmm::costs::INJECT_TRAP);
            self.hstats.irqs_injected += 1;
            self.machine.wake_core(self.cur_core);
            self.state = RunState::Running;
            return;
        }
        if self.cur_core != 0 {
            return;
        }
        if let Some((irq, vector)) = self.chipset.vpic.inta() {
            {
                let now = self.machine.now();
                self.machine.obs.prof_irq_entry(irq as u32, now);
                // Virtual-PIC INTA = guest ISR entry: close the causal
                // dispatch flow here, not at the monitor's receipt.
                self.machine.obs.inta(now, irq as u32);
            }
            let epc = self.machine.cpu.pc();
            let handler = self.vcpu.enter_trap(Cause::Interrupt, epc, vector as u32);
            self.activate_shadow();
            self.machine.cpu.set_pc(handler);
            self.consume_monitor(lvmm::costs::INJECT_TRAP);
            self.record_exit(ExitCause::IrqInject, lvmm::costs::INJECT_TRAP);
            self.hstats.irqs_injected += 1;
            if self.machine.num_cores() > 1 {
                self.machine.wake_core(0);
            }
            self.state = RunState::Running;
        }
    }

    fn dispatch_trap(&mut self, trap: Trap) {
        self.sync_core();
        // Attribute the monitor cycles of this exit to one cause (see the
        // lvmm dispatcher for the scheme; the window check accounts itself).
        let monitor_before = self.stats.monitor;
        let cause = match trap.cause {
            Cause::PrivilegedInstruction => {
                self.consume_monitor(costs::EXIT_BASE);
                self.hstats.exits_privileged += 1;
                self.emulate_privileged(trap);
                ExitCause::Privileged
            }
            Cause::InstrPageFault | Cause::LoadPageFault | Cause::StorePageFault => {
                self.consume_monitor(costs::EXIT_BASE);
                self.handle_shadow_fault(trap)
            }
            other => {
                self.consume_monitor(costs::EXIT_BASE);
                self.inject_guest_trap(other, trap.epc, trap.tval);
                ExitCause::IrqInject
            }
        };
        let delta = self.stats.monitor - monitor_before;
        self.record_exit(cause, delta);
        self.maybe_inject_irq();
    }

    fn emulate_privileged(&mut self, trap: Trap) {
        let pc = trap.epc;
        let Ok(instr) = Instr::decode(trap.tval) else {
            self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
            return;
        };
        match instr {
            Instr::Csr { op, rd, rs1, csr } => {
                self.consume_monitor(lvmm::costs::EMUL_CSR);
                let Some(c) = Csr::from_number(csr) else {
                    self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
                    return;
                };
                let old = self.vcpu.read_csr(c, &self.machine.cpu);
                let writes = match op {
                    hx_cpu::isa::CsrOp::Rw => true,
                    _ => rs1 != hx_cpu::Reg::R0,
                };
                if writes {
                    if c.is_read_only() {
                        self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval);
                        return;
                    }
                    let src = self.machine.cpu.reg(rs1);
                    let new = match op {
                        hx_cpu::isa::CsrOp::Rw => src,
                        hx_cpu::isa::CsrOp::Rs => old | src,
                        hx_cpu::isa::CsrOp::Rc => old & !src,
                    };
                    let sensitive = self.vcpu.write_csr(c, new);
                    if c == Csr::Ptbr && sensitive {
                        self.consume_monitor(lvmm::costs::SHADOW_FLUSH);
                        self.activate_shadow();
                    }
                }
                self.machine.cpu.set_reg(rd, old);
                self.machine.cpu.set_pc(pc.wrapping_add(4));
            }
            Instr::Sys { op: SysOp::Tret } => {
                self.consume_monitor(lvmm::costs::EMUL_TRET);
                let resume = self.vcpu.leave_trap();
                self.activate_shadow();
                self.machine.cpu.set_pc(resume);
            }
            Instr::Sys { op: SysOp::Wfi } => {
                self.consume_monitor(lvmm::costs::EMUL_WFI);
                self.machine.cpu.set_pc(pc.wrapping_add(4));
                if self.machine.num_cores() > 1 {
                    // Park just this core; the scheduler keeps siblings
                    // running.
                    self.machine.park_active();
                } else {
                    self.state = RunState::GuestIdle;
                }
            }
            Instr::Sys {
                op: SysOp::TlbFlush,
            } => {
                self.consume_monitor(lvmm::costs::SHADOW_FLUSH);
                let key = self.shadow_key();
                self.shadow.flush_context(&mut self.machine.mem, key);
                self.machine.cpu.tlb_flush();
                self.machine.cpu.set_pc(pc.wrapping_add(4));
            }
            _ => self.inject_guest_trap(Cause::IllegalInstruction, pc, trap.tval),
        }
    }

    fn handle_shadow_fault(&mut self, trap: Trap) -> ExitCause {
        let va = trap.tval;
        let access = Access::from_fault(trap.cause);
        let vmode = self.vcpu.vmode;
        {
            let now = self.machine.now();
            self.machine
                .obs
                .event(now, EventKind::ShadowFault { vaddr: va });
        }
        let (gpa, gflags) = if self.vcpu.paging_enabled() {
            let root = self.vcpu.page_table_root();
            match guest_walk(
                &mut self.machine.mem,
                root,
                va,
                access,
                vmode,
                self.monitor_base,
                true,
            ) {
                Ok(w) => (w.gpa, w.pte),
                Err(GuestWalkErr::GuestFault) => {
                    self.inject_guest_trap(trap.cause, trap.epc, va);
                    return ExitCause::Shadow;
                }
                Err(GuestWalkErr::BadTable) => {
                    self.hstats.protection_violations += 1;
                    self.inject_guest_trap(trap.cause, trap.epc, va);
                    return ExitCause::Protection;
                }
            }
        } else {
            (
                va,
                pte::V | pte::R | pte::W | pte::X | pte::U | pte::A | pte::D,
            )
        };

        match classify(gpa, self.monitor_base, self.ram_size) {
            PageClass::Monitor => {
                self.hstats.protection_violations += 1;
                self.inject_guest_trap(trap.cause, trap.epc, va);
                ExitCause::Protection
            }
            PageClass::Unmapped => {
                self.inject_guest_trap(access.fault_cause(), trap.epc, va);
                ExitCause::Shadow
            }
            // The defining property of the hosted monitor: *all* devices
            // are emulated, including the high-throughput ones.
            PageClass::EmulatedMmio | PageClass::PassthroughMmio => {
                self.hstats.exits_mmio += 1;
                self.emulate_mmio(trap, va, gpa, access);
                ExitCause::Mmio
            }
            PageClass::GuestRam => {
                // The guard applies only to fill paths; emulated-MMIO faults
                // legitimately repeat at the same PC.
                if self.progress.no_progress(&trap) {
                    // Unrecoverable: surface to the guest's own handler.
                    self.inject_guest_trap(trap.cause, trap.epc, trap.tval);
                    self.progress.reset();
                    return ExitCause::Shadow;
                }
                self.hstats.exits_shadow += 1;
                self.consume_monitor(lvmm::costs::SHADOW_FILL);
                let mut flags = pte::V | pte::U | pte::A | pte::D;
                if gflags & pte::R != 0 {
                    flags |= pte::R;
                }
                if gflags & pte::X != 0 {
                    flags |= pte::X;
                }
                if gflags & pte::W != 0 && gflags & pte::D != 0 {
                    flags |= pte::W;
                }
                let key = self.shadow_key();
                self.shadow.map(
                    &mut self.machine.mem,
                    key,
                    vmode,
                    va & !PAGE_MASK,
                    gpa & !PAGE_MASK,
                    flags,
                );
                ExitCause::Shadow
            }
        }
    }

    fn emulate_mmio(&mut self, trap: Trap, va: u32, gpa: u32, access: Access) {
        // EXIT_BASE was already charged by the dispatcher.
        self.consume_monitor(costs::EMUL_DEV_REG);
        let Some(instr) = self.fetch_guest_instr(trap.epc) else {
            self.inject_guest_trap(Cause::InstrPageFault, trap.epc, trap.epc);
            return;
        };
        let page = gpa & !(map::DEV_PAGE - 1);
        let offset = gpa & (map::DEV_PAGE - 1);
        match (instr, access) {
            (
                Instr::Load {
                    kind: LoadKind::W,
                    rd,
                    ..
                },
                Access::Load,
            ) => {
                let val = match page {
                    map::HDC_BASE => {
                        let (v, host) = self.vdisk.read_reg(offset);
                        self.consume_host(host);
                        v
                    }
                    map::NIC_BASE => self.vnic.read_reg(offset),
                    map::PIC_BASE if offset >= smp::reg::SEND => self.ipi_mmio_read(offset),
                    // Tracepoint registers read as zero everywhere; route
                    // through the machine bus so raw and hosted agree.
                    map::TRACE_BASE => self
                        .machine
                        .bus_read(gpa, MemSize::Word)
                        .unwrap_or_default(),
                    _ => self.chipset.mmio_read(&mut self.machine, page, offset),
                };
                self.machine.cpu.set_reg(rd, val);
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
            }
            (
                Instr::Store {
                    kind: StoreKind::W,
                    rs2,
                    ..
                },
                Access::Store,
            ) => {
                let val = self.machine.cpu.reg(rs2);
                if page == map::PIC_BASE && offset == hx_machine::pic::reg::EOI {
                    // Virtual-interrupt retirement: close the profiler's
                    // entry→EOI latency window and the causal ISR-service
                    // flow (the only EOI the causal layer sees — the real
                    // PIC is retired via a direct device call).
                    let now = self.machine.now();
                    self.machine.obs.prof_irq_eoi(now);
                    self.machine.obs.eoi(now);
                }
                match page {
                    map::HDC_BASE => {
                        let host = self.vdisk.write_reg(&mut self.machine, offset, val);
                        self.consume_host(host);
                    }
                    map::NIC_BASE => {
                        let host = self.vnic.write_reg(&mut self.machine, offset, val);
                        self.consume_host(host);
                    }
                    map::PIC_BASE if offset >= smp::reg::SEND => {
                        self.ipi_mmio_write(offset, val);
                    }
                    // Tracepoint store: forward to the machine bus, where
                    // the causal/journal hooks live, so guest tracepoints
                    // behave identically on all three platforms.
                    map::TRACE_BASE => {
                        let _ = self.machine.bus_write(gpa, val, MemSize::Word);
                    }
                    _ => self
                        .chipset
                        .mmio_write(&mut self.machine, page, offset, val),
                }
                self.machine.cpu.set_pc(trap.epc.wrapping_add(4));
            }
            _ => {
                self.inject_guest_trap(access.fault_cause(), trap.epc, va);
            }
        }
        // Attribute the emulation's host time to the device itself; the
        // trailing `record_exit(Mmio)` then covers only exit bookkeeping.
        if let Some(dev) = map::dev_of(gpa) {
            self.machine.obs.host_mark(HostPhase::Device(dev));
        }
    }

    /// Emulated reads of the IPI register block on the PIC page.
    fn ipi_mmio_read(&mut self, offset: u32) -> u32 {
        match offset {
            smp::reg::ENTRY => self.machine.ipi_entry(),
            smp::reg::CORE_ID => self.cur_core as u32,
            smp::reg::NUM_CORES => self.machine.num_cores() as u32,
            _ => {
                self.chipset.bad_accesses += 1;
                0
            }
        }
    }

    /// Emulated writes to the IPI register block: sends route through the
    /// machine's own delivery path so virtual and raw IPI timing agree.
    fn ipi_mmio_write(&mut self, offset: u32, val: u32) {
        match offset {
            smp::reg::SEND => {
                let target = (val & 0xff) as u8;
                let line = ((val >> 8) & 0xff) as u8;
                if !self.machine.ipi_send(target, line) {
                    self.chipset.bad_accesses += 1;
                }
            }
            smp::reg::ENTRY => self.machine.set_ipi_entry(val),
            _ => self.chipset.bad_accesses += 1,
        }
    }

    fn fetch_guest_instr(&mut self, pc: u32) -> Option<Instr> {
        let gpa = if self.vcpu.paging_enabled() {
            let root = self.vcpu.page_table_root();
            match guest_walk(
                &mut self.machine.mem,
                root,
                pc,
                Access::Fetch,
                self.vcpu.vmode,
                self.monitor_base,
                false,
            ) {
                Ok(w) => w.gpa,
                Err(_) => return None,
            }
        } else {
            pc
        };
        let word = self.machine.mem.read(gpa, MemSize::Word).ok()?;
        Instr::decode(word).ok()
    }

    fn handle_real_irq(&mut self, irq: u8) {
        self.machine.pic.eoi(irq);
        self.consume_monitor(costs::EXIT_BASE);
        self.record_exit(ExitCause::IrqReflect, costs::EXIT_BASE);
        self.hstats.exits_irq += 1;
        match irq {
            map::irq::PIT => self.chipset.vpic.assert_irq(map::irq::PIT),
            map::irq::UART => {
                // No debug stub in the hosted monitor: the host consumes
                // its own serial traffic.
                while self.machine.uart.pop_rx().is_some() {}
            }
            map::irq::HDC0 | map::irq::HDC1 | map::irq::HDC2 => {
                let unit = (irq - map::irq::HDC0) as usize;
                let (done, host) = self.vdisk.on_host_complete(&mut self.machine, unit);
                self.consume_host(host);
                if done {
                    self.chipset.vpic.assert_irq(irq);
                }
            }
            map::irq::NIC_TX => {
                let (raise, host) = self.vnic.on_host_tx_complete(&mut self.machine);
                self.consume_host(host);
                if raise {
                    self.chipset.vpic.assert_irq(map::irq::NIC_TX);
                }
            }
            map::irq::NIC_RX => {
                // Host-side receive; nothing to relay in this model (frames
                // enter via `inject_guest_rx`).
            }
            _ => {}
        }
        self.maybe_inject_irq();
    }

    fn step_impl(&mut self, batch: bool) -> PlatformStep {
        match self.state {
            RunState::Running => self.guest_step(batch),
            RunState::GuestIdle => self.guest_idle_step(),
        }
    }
}

impl ExitPolicy for HostedPlatform {
    fn mach(&self) -> &Machine {
        &self.machine
    }

    fn mach_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats_mut(&mut self) -> &mut TimeStats {
        &mut self.stats
    }

    fn handle_trap(&mut self, trap: Trap) {
        self.dispatch_trap(trap);
    }

    fn handle_interrupt(&mut self, irq: u8, _vector: u8) {
        self.sync_core();
        if irq >= smp::IRQ_BASE {
            self.handle_ipi(irq - smp::IRQ_BASE);
        } else {
            self.handle_real_irq(irq);
        }
    }
}

impl Platform for HostedPlatform {
    fn name(&self) -> &'static str {
        "hosted"
    }

    fn inject_rx_frame(&mut self, frame: &[u8]) {
        self.inject_guest_rx(frame);
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats(&self) -> &TimeStats {
        &self.stats
    }

    fn step(&mut self) -> PlatformStep {
        // The profiler and logpoints need per-instruction PC boundaries.
        let batch = !self.machine.obs.profiling() && !self.machine.has_logpoints();
        self.step_impl(batch)
    }

    fn step_precise(&mut self) -> PlatformStep {
        self.step_impl(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    fn boot(src: &str) -> HostedPlatform {
        let program = hx_asm::assemble(src).expect("guest assembles");
        let mut machine = Machine::new(MachineConfig {
            ram_size: 16 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let entry = program.symbols.get("start").unwrap_or(program.base());
        HostedPlatform::new(machine, entry)
    }

    #[test]
    fn disk_read_through_host_relay() {
        let mut vmm = boot(&format!(
            "start:  li   t0, {hdc:#x}
                     li   t1, 3
                     sw   t1, 0(t0)
                     li   t1, 1
                     sw   t1, 4(t0)
                     li   t1, 0x9000
                     sw   t1, 8(t0)
                     li   t1, 1
                     sw   t1, 0xc(t0)
             poll:   lw   t2, 0x10(t0)
                     andi t2, t2, 2
                     beqz t2, poll
                     li   s0, 1
             halt:   j halt
            ",
            hdc = map::HDC_BASE
        ));
        vmm.run_for(2_000_000);
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R18),
            1,
            "transfer completed"
        );
        let mut expect = vec![0u8; 512];
        hx_machine::disk::fill_expected(0, 3, &mut expect);
        assert_eq!(&vmm.machine().mem.as_bytes()[0x9000..0x9200], &expect[..]);
        let hs = vmm.hosted_stats();
        assert!(
            hs.exits_mmio > 4,
            "every register access is an exit: {hs:?}"
        );
        assert!(vmm.time_stats().host_model > 0, "host relay time charged");
    }

    #[test]
    fn nic_tx_through_host_relay() {
        let mut vmm = boot(&format!(
            "start:  ; build one 600-byte frame at 0x4000 (contents: zeros)
                     li   t0, 0x1000         ; ring
                     li   t1, 0x4000
                     sw   t1, 0(t0)          ; desc.addr
                     li   t1, 600
                     sw   t1, 4(t0)          ; desc.len
                     sw   zero, 12(t0)       ; desc.status
                     li   t0, {nic:#x}
                     li   t1, 0x1000
                     sw   t1, 0(t0)          ; TX_BASE
                     li   t1, 8
                     sw   t1, 4(t0)          ; TX_LEN
                     li   t1, 1
                     sw   t1, 0xc(t0)        ; TX_TAIL doorbell
             poll:   lw   t2, 8(t0)          ; TX_HEAD
                     beqz t2, poll
                     li   s0, 1
             halt:   j halt
            ",
            nic = map::NIC_BASE
        ));
        vmm.run_for(3_000_000);
        assert_eq!(
            vmm.machine().cpu.reg(hx_cpu::Reg::R18),
            1,
            "frame completed"
        );
        assert_eq!(vmm.relayed_tx_frames(), 1);
        let c = vmm.machine().nic.counters();
        assert_eq!(c.tx_frames, 1, "the real wire saw the frame");
        assert_eq!(c.tx_bytes, 600);
        assert!(vmm.time_stats().host_model as f64 > costs::HOST_PACKET_TX as f64);
    }

    #[test]
    fn hosted_io_costs_more_than_lvmm() {
        // The same single-sector disk read on both monitors; the hosted one
        // must burn more monitor+host cycles. This is the paper's central
        // comparison in miniature.
        let src = format!(
            "start:  li   t0, {hdc:#x}
                     li   t1, 3
                     sw   t1, 0(t0)
                     li   t1, 1
                     sw   t1, 4(t0)
                     li   t1, 0x9000
                     sw   t1, 8(t0)
                     li   t1, 1
                     sw   t1, 0xc(t0)
             poll:   lw   t2, 0x10(t0)
                     andi t2, t2, 2
                     beqz t2, poll
                     li   s0, 1
             halt:   j halt
            ",
            hdc = map::HDC_BASE
        );
        let program = hx_asm::assemble(&src).unwrap();

        let mut m1 = Machine::new(MachineConfig {
            ram_size: 16 << 20,
            ..MachineConfig::default()
        });
        m1.load_program(&program);
        let mut lv = lvmm::LvmmPlatform::new(m1, program.base());
        lv.run_for(2_000_000);
        assert_eq!(lv.machine().cpu.reg(hx_cpu::Reg::R18), 1);

        let mut m2 = Machine::new(MachineConfig {
            ram_size: 16 << 20,
            ..MachineConfig::default()
        });
        m2.load_program(&program);
        let mut ho = HostedPlatform::new(m2, program.base());
        ho.run_for(2_000_000);
        assert_eq!(ho.machine().cpu.reg(hx_cpu::Reg::R18), 1);

        let lv_overhead = lv.time_stats().monitor + lv.time_stats().host_model;
        let ho_overhead = ho.time_stats().monitor + ho.time_stats().host_model;
        assert!(
            ho_overhead > 2 * lv_overhead,
            "hosted overhead {ho_overhead} must dwarf lvmm {lv_overhead}"
        );
    }

    #[test]
    fn rx_injection_reaches_guest_ring() {
        let mut vmm = boot(&format!(
            "start:  li   t0, 0x2000
                     li   t1, 0x8000
                     sw   t1, 0(t0)
                     li   t1, 1024
                     sw   t1, 4(t0)
                     li   t0, {nic:#x}
                     li   t1, 0x2000
                     sw   t1, 0x20(t0)
                     li   t1, 4
                     sw   t1, 0x24(t0)
                     li   t1, 1
                     sw   t1, 0x2c(t0)
                     li   s0, 1
             halt:   j halt
            ",
            nic = map::NIC_BASE
        ));
        vmm.run_for(500_000);
        assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R18), 1);
        vmm.inject_guest_rx(&[7u8; 64]);
        assert_eq!(vmm.machine().mem.as_bytes()[0x8000], 7);
        assert_eq!(vmm.machine().mem.word(0x2000 + 8), 64);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut vmm = boot(
                "start:  li t0, 200
                 l:      addi t0, t0, -1
                         bnez t0, l
                 halt:   j halt
                ",
            );
            vmm.run_for(50_000);
            (vmm.machine().now(), *vmm.time_stats(), vmm.hosted_stats())
        };
        assert_eq!(run(), run());
    }
}
