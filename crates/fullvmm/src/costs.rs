//! Cost model of the hosted monitor and its host OS, following the
//! measurements reported by Sugerman et al. (USENIX ATC 2001) scaled to the
//! 25 MHz machine.
//!
//! The dominant terms are the **world switch** (the hosted VMM must switch
//! between the VMM context and the host OS context — page tables, segments,
//! interrupt state — for every I/O request) and the **host stack traversal**
//! (each guest packet becomes a host syscall through the host's network
//! stack and driver). These are what the lightweight monitor avoids by
//! letting the guest drive the devices directly.

/// Monitor exit/entry (same order as the lightweight monitor's).
pub const EXIT_BASE: u64 = 700;

/// Dispatch + device-model work for one emulated device-register access.
pub const EMUL_DEV_REG: u64 = 400;

/// One world switch between the VMM context and the host OS context.
pub const WORLD_SWITCH: u64 = 8_000;

/// Host network stack + driver traversal per transmitted packet.
pub const HOST_PACKET_TX: u64 = 31_000;

/// Host network stack + driver traversal per received packet.
pub const HOST_PACKET_RX: u64 = 30_000;

/// Host syscall + filesystem/driver path per disk command.
pub const HOST_DISK_CMD: u64 = 20_000;

/// Bytes copied per cycle when the host model moves data between guest
/// memory and host bounce buffers (a word-wide memcpy).
pub const COPY_BYTES_PER_CYCLE: u64 = 4;

/// Cycles to copy `bytes` through a host bounce buffer.
pub fn copy_cycles(bytes: u64) -> u64 {
    bytes.div_ceil(COPY_BYTES_PER_CYCLE)
}

#[cfg(test)]
mod tests {
    #[test]
    fn copy_cycles_rounds_up() {
        assert_eq!(super::copy_cycles(0), 0);
        assert_eq!(super::copy_cycles(1), 1);
        assert_eq!(super::copy_cycles(4), 1);
        assert_eq!(super::copy_cycles(1500), 375);
    }
}
