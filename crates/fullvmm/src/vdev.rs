//! Full software models of the disk controller and NIC, relayed through the
//! modeled host OS.
//!
//! The guest drives the *same* register interface as the real devices (one
//! driver works on all three platforms), but here every access lands in
//! these models, and data takes the long way around: guest memory → host
//! bounce buffer → real device (and back), with world switches and host
//! stack costs charged for every command.

use crate::costs;
use hx_cpu::MemSize;
use hx_machine::{disk, map, nic, Machine};
use std::collections::VecDeque;

/// Sector size (re-exported for convenience).
pub const SECTOR: u32 = hx_machine::timing::SECTOR_SIZE;

/// Maximum sectors per virtual disk command (bounce-buffer size).
pub const DISK_BOUNCE_SECTORS: u32 = 512;

#[derive(Debug, Clone, Copy, Default)]
struct VDiskUnit {
    lba: u32,
    count: u32,
    dma: u32,
    busy: bool,
    done: bool,
    error: bool,
    op: u32,
}

/// The emulated three-unit disk controller.
#[derive(Debug, Clone)]
pub struct VDisk {
    units: [VDiskUnit; disk::UNITS],
    bounce: [u32; disk::UNITS],
    /// Completed commands (statistics).
    pub commands: u64,
}

impl VDisk {
    /// Creates the model with one host bounce buffer per unit.
    pub fn new(bounce: [u32; disk::UNITS]) -> VDisk {
        VDisk {
            units: [VDiskUnit::default(); disk::UNITS],
            bounce,
            commands: 0,
        }
    }

    /// Emulated guest register read. Returns `(value, host_cycles)`.
    pub fn read_reg(&mut self, offset: u32) -> (u32, u64) {
        let unit = (offset / 0x40) as usize;
        let r = offset % 0x40;
        if unit >= disk::UNITS {
            return (0, 0);
        }
        let u = &self.units[unit];
        let v = match r {
            disk::reg::LBA => u.lba,
            disk::reg::COUNT => u.count,
            disk::reg::DMA => u.dma,
            disk::reg::STATUS => {
                (u.busy as u32) * disk::status::BUSY
                    + (u.done as u32) * disk::status::DONE
                    + (u.error as u32) * disk::status::ERROR
            }
            _ => 0,
        };
        (v, 0)
    }

    /// Emulated guest register write. Doorbells relay the command through
    /// the host OS to the real controller. Returns host cycles to charge.
    pub fn write_reg(&mut self, machine: &mut Machine, offset: u32, val: u32) -> u64 {
        let unit = (offset / 0x40) as usize;
        let r = offset % 0x40;
        if unit >= disk::UNITS {
            return 0;
        }
        match r {
            disk::reg::LBA => self.units[unit].lba = val,
            disk::reg::COUNT => self.units[unit].count = val,
            disk::reg::DMA => self.units[unit].dma = val,
            disk::reg::CMD => {
                let u = &mut self.units[unit];
                if u.busy
                    || !matches!(val, disk::cmd::READ | disk::cmd::WRITE)
                    || u.count == 0
                    || u.count > DISK_BOUNCE_SECTORS
                {
                    u.error = true;
                    return 0;
                }
                u.busy = true;
                u.done = false;
                u.error = false;
                u.op = val;
                self.commands += 1;
                let (lba, count, op) = (u.lba, u.count, u.op);
                let bounce = self.bounce[unit];
                // Guest → host copy happens up front for writes.
                let mut host = costs::WORLD_SWITCH + costs::HOST_DISK_CMD;
                if op == disk::cmd::WRITE {
                    let bytes = count as u64 * SECTOR as u64;
                    host += costs::copy_cycles(bytes);
                    let dma = self.units[unit].dma;
                    let mut buf = vec![0u8; bytes as usize];
                    if machine.mem.dma_read(dma, &mut buf).is_ok() {
                        let _ = machine.mem.dma_write(bounce, &buf);
                    }
                }
                // Program the real controller from host context.
                let base = map::HDC_BASE + unit as u32 * 0x40;
                let _ = machine.bus_write(base + disk::reg::LBA, lba, MemSize::Word);
                let _ = machine.bus_write(base + disk::reg::COUNT, count, MemSize::Word);
                let _ = machine.bus_write(base + disk::reg::DMA, bounce, MemSize::Word);
                let _ = machine.bus_write(base + disk::reg::CMD, op, MemSize::Word);
                return host;
            }
            _ => {}
        }
        0
    }

    /// Handles the real controller's completion interrupt for `unit`:
    /// copies read data host → guest and completes the virtual command.
    /// Returns `(completed, host_cycles)`.
    pub fn on_host_complete(&mut self, machine: &mut Machine, unit: usize) -> (bool, u64) {
        if unit >= disk::UNITS || !self.units[unit].busy {
            return (false, 0);
        }
        let (op, count, dma) = {
            let u = &self.units[unit];
            (u.op, u.count, u.dma)
        };
        let bounce = self.bounce[unit];
        let real_status = machine
            .bus_read(
                map::HDC_BASE + unit as u32 * 0x40 + disk::reg::STATUS,
                MemSize::Word,
            )
            .unwrap_or(disk::status::ERROR);
        let mut host = costs::WORLD_SWITCH; // host interrupt handling
        let failed = real_status & disk::status::ERROR != 0;
        if !failed && op == disk::cmd::READ {
            let bytes = count as u64 * SECTOR as u64;
            host += costs::copy_cycles(bytes);
            let mut buf = vec![0u8; bytes as usize];
            if machine.mem.dma_read(bounce, &mut buf).is_ok() {
                let _ = machine.mem.dma_write(dma, &buf);
            }
        }
        let u = &mut self.units[unit];
        u.busy = false;
        u.done = !failed;
        u.error = failed;
        (true, host)
    }
}

/// One in-flight guest TX descriptor relayed to the real NIC.
#[derive(Debug, Clone, Copy)]
struct InflightTx {
    guest_idx: u32,
    frags: u32,
    bytes: u32,
}

/// The emulated NIC: guest-facing rings virtualized, traffic relayed via a
/// host-owned ring on the real controller.
#[derive(Debug, Clone)]
pub struct VNic {
    tx_base: u32,
    tx_len: u32,
    tx_head: u32,
    tx_tail: u32,
    istatus: u32,
    moderation: u32,
    frames_since_irq: u32,
    rx_base: u32,
    rx_len: u32,
    rx_head: u32,
    rx_tail: u32,
    host_ring: u32,
    host_ring_len: u32,
    host_bufs: u32,
    host_tail: u32,
    host_completed: u32,
    inflight: VecDeque<InflightTx>,
    /// Frames relayed guest → wire (statistics).
    pub tx_frames: u64,
    /// Frames relayed wire → guest.
    pub rx_frames: u64,
    /// Guest descriptor errors.
    pub tx_errors: u64,
}

/// Host TX ring length (descriptors) and per-buffer size.
pub const HOST_RING_LEN: u32 = 64;
/// Size of each host packet buffer.
pub const HOST_BUF_SIZE: u32 = 2048;

impl VNic {
    /// Creates the model; `host_ring` and `host_bufs` are host-memory
    /// addresses for the real NIC's ring and packet buffers. Programs the
    /// real controller.
    pub fn new(machine: &mut Machine, host_ring: u32, host_bufs: u32) -> VNic {
        let _ = machine.bus_write(map::NIC_BASE + nic::reg::TX_BASE, host_ring, MemSize::Word);
        let _ = machine.bus_write(
            map::NIC_BASE + nic::reg::TX_LEN,
            HOST_RING_LEN,
            MemSize::Word,
        );
        let _ = machine.bus_write(map::NIC_BASE + nic::reg::MODERATION, 1, MemSize::Word);
        VNic {
            tx_base: 0,
            tx_len: 0,
            tx_head: 0,
            tx_tail: 0,
            istatus: 0,
            moderation: 1,
            frames_since_irq: 0,
            rx_base: 0,
            rx_len: 0,
            rx_head: 0,
            rx_tail: 0,
            host_ring,
            host_ring_len: HOST_RING_LEN,
            host_bufs,
            host_tail: 0,
            host_completed: 0,
            inflight: VecDeque::new(),
            tx_frames: 0,
            rx_frames: 0,
            tx_errors: 0,
        }
    }

    /// Emulated guest register read.
    pub fn read_reg(&mut self, offset: u32) -> u32 {
        match offset {
            nic::reg::TX_BASE => self.tx_base,
            nic::reg::TX_LEN => self.tx_len,
            nic::reg::TX_HEAD => self.tx_head,
            nic::reg::TX_TAIL => self.tx_tail,
            nic::reg::ISTATUS => self.istatus,
            nic::reg::MODERATION => self.moderation,
            nic::reg::RX_BASE => self.rx_base,
            nic::reg::RX_LEN => self.rx_len,
            nic::reg::RX_HEAD => self.rx_head,
            nic::reg::RX_TAIL => self.rx_tail,
            _ => 0,
        }
    }

    /// Emulated guest register write. Returns host cycles to charge.
    pub fn write_reg(&mut self, machine: &mut Machine, offset: u32, val: u32) -> u64 {
        match offset {
            nic::reg::TX_BASE => self.tx_base = val,
            nic::reg::TX_LEN => self.tx_len = val,
            nic::reg::TX_TAIL => {
                self.tx_tail = if self.tx_len == 0 {
                    val
                } else {
                    val % self.tx_len
                };
                return self.pump_guest_tx(machine);
            }
            nic::reg::IACK => self.istatus &= !val,
            nic::reg::MODERATION => self.moderation = val,
            nic::reg::RX_BASE => self.rx_base = val,
            nic::reg::RX_LEN => self.rx_len = val,
            nic::reg::RX_TAIL => {
                self.rx_tail = if self.rx_len == 0 {
                    val
                } else {
                    val % self.rx_len
                };
            }
            _ => {}
        }
        0
    }

    fn read_guest_desc(machine: &Machine, base: u32, idx: u32) -> Option<[u32; 4]> {
        let mut raw = [0u8; 16];
        machine
            .mem
            .dma_read(base.wrapping_add(idx * 16), &mut raw)
            .ok()?;
        let w = |i: usize| u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
        Some([w(0), w(1), w(2), w(3)])
    }

    fn write_guest_status(machine: &mut Machine, base: u32, idx: u32, status: u32) {
        let _ = machine
            .mem
            .dma_write(base.wrapping_add(idx * 16 + 12), &status.to_le_bytes());
    }

    /// Relays pending guest TX frames (fragment chains) to the real NIC
    /// through host bounce buffers. Returns host cycles.
    fn pump_guest_tx(&mut self, machine: &mut Machine) -> u64 {
        let mut host = 0u64;
        while self.tx_len != 0
            && self.tx_head != self.tx_tail
            && (self.inflight.len() as u32) < self.host_ring_len - 1
        {
            // Gather the fragment chain exactly like the real controller.
            let first = self.tx_head;
            let mut payload: Vec<u8> = Vec::new();
            let mut frags = 0u32;
            let mut idx = first;
            let mut bad = false;
            loop {
                if frags == 4 || (frags > 0 && idx == self.tx_tail) {
                    bad = true;
                    frags = frags.max(1);
                    break;
                }
                let Some([a, l, flags, _]) = Self::read_guest_desc(machine, self.tx_base, idx)
                else {
                    bad = true;
                    frags += 1;
                    break;
                };
                if l == 0 || payload.len() as u32 + l > HOST_BUF_SIZE {
                    bad = true;
                    frags += 1;
                    break;
                }
                let start = payload.len();
                payload.resize(start + l as usize, 0);
                if machine.mem.dma_read(a, &mut payload[start..]).is_err() {
                    bad = true;
                    frags += 1;
                    break;
                }
                frags += 1;
                idx = (idx + 1) % self.tx_len;
                if flags & hx_machine::nic::FLAG_MORE == 0 {
                    break;
                }
            }
            if bad {
                self.fail_guest_frame(machine, first, frags);
                continue;
            }
            let len = payload.len() as u32;
            // Copy guest → host buffer, then hand to the host stack.
            let slot = self.host_tail % self.host_ring_len;
            let buf = self.host_bufs + slot * HOST_BUF_SIZE;
            let _ = machine.mem.dma_write(buf, &payload);
            host += costs::WORLD_SWITCH + costs::HOST_PACKET_TX + costs::copy_cycles(len as u64);
            // Host descriptor + real doorbell.
            let d = self.host_ring + slot * 16;
            let _ = machine.mem.dma_write(d, &buf.to_le_bytes());
            let _ = machine.mem.dma_write(d + 4, &len.to_le_bytes());
            let _ = machine.mem.dma_write(d + 12, &0u32.to_le_bytes());
            self.host_tail = (self.host_tail + 1) % self.host_ring_len;
            let _ = machine.bus_write(
                map::NIC_BASE + nic::reg::TX_TAIL,
                self.host_tail,
                MemSize::Word,
            );
            self.inflight.push_back(InflightTx {
                guest_idx: first,
                frags,
                bytes: len,
            });
            self.tx_head = (first + frags) % self.tx_len;
        }
        host
    }

    fn fail_guest_frame(&mut self, machine: &mut Machine, first: u32, frags: u32) {
        for k in 0..frags {
            let idx = (first + k) % self.tx_len.max(1);
            Self::write_guest_status(machine, self.tx_base, idx, 2);
        }
        self.tx_errors += 1;
        self.istatus |= nic::istatus::ERROR;
        self.tx_head = (first + frags) % self.tx_len.max(1);
    }

    /// Handles the real NIC's TX-complete interrupt: completes relayed
    /// guest descriptors. Returns `(virtual_irq_due, host_cycles)`.
    pub fn on_host_tx_complete(&mut self, machine: &mut Machine) -> (bool, u64) {
        let mut host = costs::WORLD_SWITCH; // host interrupt path
        let real_head = machine
            .bus_read(map::NIC_BASE + nic::reg::TX_HEAD, MemSize::Word)
            .unwrap_or(self.host_completed);
        let mut raise = false;
        while self.host_completed != real_head {
            if let Some(tx) = self.inflight.pop_front() {
                for k in 0..tx.frags {
                    let idx = (tx.guest_idx + k) % self.tx_len.max(1);
                    Self::write_guest_status(machine, self.tx_base, idx, 1);
                }
                self.tx_frames += 1;
                let _ = tx.bytes;
                self.frames_since_irq += 1;
                if self.frames_since_irq >= self.moderation.max(1) {
                    self.frames_since_irq = 0;
                    self.istatus |= nic::istatus::TX_DONE;
                    raise = true;
                }
            }
            self.host_completed = (self.host_completed + 1) % self.host_ring_len;
        }
        // More guest descriptors may be waiting for free host slots.
        host += self.pump_guest_tx(machine);
        // Acknowledge the real controller.
        let _ = machine.bus_write(
            map::NIC_BASE + nic::reg::IACK,
            nic::istatus::TX_DONE | nic::istatus::ERROR,
            MemSize::Word,
        );
        (raise, host)
    }

    /// Delivers a host-received frame into the guest's virtual RX ring.
    /// Returns `(delivered, host_cycles)`.
    pub fn deliver_rx(&mut self, machine: &mut Machine, frame: &[u8]) -> (bool, u64) {
        if self.rx_len == 0 || self.rx_head == self.rx_tail {
            return (false, costs::WORLD_SWITCH);
        }
        let idx = self.rx_head;
        let Some([addr, cap, _, _]) = Self::read_guest_desc(machine, self.rx_base, idx) else {
            return (false, costs::WORLD_SWITCH);
        };
        if frame.len() as u32 > cap {
            return (false, costs::WORLD_SWITCH);
        }
        let _ = machine.mem.dma_write(addr, frame);
        let _ = machine.mem.dma_write(
            self.rx_base + idx * 16 + 8,
            &(frame.len() as u32).to_le_bytes(),
        );
        Self::write_guest_status(machine, self.rx_base, idx, 1);
        self.rx_head = (self.rx_head + 1) % self.rx_len;
        self.rx_frames += 1;
        self.istatus |= nic::istatus::RX;
        (
            true,
            costs::WORLD_SWITCH + costs::HOST_PACKET_RX + costs::copy_cycles(frame.len() as u64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn vdisk_read_relays_through_bounce() {
        let mut m = machine();
        let bounce = 0x70_0000;
        let mut vd = VDisk::new([bounce, bounce + 0x4_0000, bounce + 0x8_0000]);
        vd.write_reg(&mut m, disk::reg::LBA, 11);
        vd.write_reg(&mut m, disk::reg::COUNT, 2);
        vd.write_reg(&mut m, disk::reg::DMA, 0x9000);
        let host = vd.write_reg(&mut m, disk::reg::CMD, disk::cmd::READ);
        assert!(host >= costs::WORLD_SWITCH + costs::HOST_DISK_CMD);
        let (s, _) = vd.read_reg(disk::reg::STATUS);
        assert_eq!(s, disk::status::BUSY);
        // Run the machine until the real controller completes.
        while m.pending_events() > 0 {
            m.consume(1_000);
        }
        // Real IRQ would arrive; emulate the host handler.
        let (done, host) = vd.on_host_complete(&mut m, 0);
        assert!(done);
        assert!(host >= costs::copy_cycles(1024));
        let (s, _) = vd.read_reg(disk::reg::STATUS);
        assert_eq!(s, disk::status::DONE);
        // Guest buffer got the disk pattern (via the bounce).
        let mut expect = vec![0u8; 1024];
        disk::fill_expected(0, 11, &mut expect);
        assert_eq!(&m.mem.as_bytes()[0x9000..0x9400], &expect[..]);
    }

    #[test]
    fn vdisk_rejects_oversize_and_busy() {
        let mut m = machine();
        let mut vd = VDisk::new([0x70_0000, 0x74_0000, 0x78_0000]);
        vd.write_reg(&mut m, disk::reg::COUNT, DISK_BOUNCE_SECTORS + 1);
        vd.write_reg(&mut m, disk::reg::CMD, disk::cmd::READ);
        assert!(vd.read_reg(disk::reg::STATUS).0 & disk::status::ERROR != 0);
        vd.write_reg(&mut m, disk::reg::COUNT, 1);
        vd.write_reg(&mut m, disk::reg::CMD, disk::cmd::READ);
        vd.write_reg(&mut m, disk::reg::CMD, disk::cmd::READ); // while busy
        assert!(vd.read_reg(disk::reg::STATUS).0 & disk::status::ERROR != 0);
    }

    #[test]
    fn vnic_relays_guest_frames_to_wire() {
        let mut m = machine();
        m.nic.set_capture(true);
        let host_ring = 0x70_0000;
        let host_bufs = 0x71_0000;
        let mut vn = VNic::new(&mut m, host_ring, host_bufs);
        // Guest ring with two frames.
        vn.write_reg(&mut m, nic::reg::TX_BASE, 0x1000);
        vn.write_reg(&mut m, nic::reg::TX_LEN, 8);
        for i in 0..2u32 {
            let payload = vec![0x40 + i as u8; 600];
            m.mem.dma_write(0x4000 + i * 0x1000, &payload).unwrap();
            let d = 0x1000 + i * 16;
            m.mem
                .dma_write(d, &(0x4000 + i * 0x1000).to_le_bytes())
                .unwrap();
            m.mem.dma_write(d + 4, &600u32.to_le_bytes()).unwrap();
        }
        let host = vn.write_reg(&mut m, nic::reg::TX_TAIL, 2);
        assert!(host >= 2 * (costs::WORLD_SWITCH + costs::HOST_PACKET_TX));
        // Let the real NIC serialize both frames.
        for _ in 0..100 {
            m.consume(100);
        }
        let (raise, _) = vn.on_host_tx_complete(&mut m);
        assert!(raise);
        assert_eq!(vn.tx_frames, 2);
        assert_eq!(vn.read_reg(nic::reg::TX_HEAD), 2);
        assert!(vn.read_reg(nic::reg::ISTATUS) & nic::istatus::TX_DONE != 0);
        // Both frames reached the wire intact.
        let frames = m.nic.take_captured();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], vec![0x40; 600]);
        assert_eq!(frames[1], vec![0x41; 600]);
        // Guest descriptors completed.
        assert_eq!(m.mem.word(0x1000 + 12), 1);
        assert_eq!(m.mem.word(0x1000 + 16 + 12), 1);
    }

    #[test]
    fn vnic_rx_delivery() {
        let mut m = machine();
        let mut vn = VNic::new(&mut m, 0x70_0000, 0x71_0000);
        // No ring: dropped.
        let (ok, _) = vn.deliver_rx(&mut m, &[1, 2, 3]);
        assert!(!ok);
        vn.write_reg(&mut m, nic::reg::RX_BASE, 0x2000);
        vn.write_reg(&mut m, nic::reg::RX_LEN, 4);
        m.mem.dma_write(0x2000, &0x8000u32.to_le_bytes()).unwrap();
        m.mem.dma_write(0x2004, &1024u32.to_le_bytes()).unwrap();
        vn.write_reg(&mut m, nic::reg::RX_TAIL, 1);
        let (ok, host) = vn.deliver_rx(&mut m, &[9u8; 100]);
        assert!(ok);
        assert!(host > costs::WORLD_SWITCH);
        assert_eq!(m.mem.as_bytes()[0x8000], 9);
        assert_eq!(m.mem.word(0x2000 + 8), 100);
        assert_eq!(vn.rx_frames, 1);
    }
}
