//! Shape tests for the paper's evaluation (Fig. 3.1), at test-friendly
//! scale: ordering of the three platforms, monotonic load growth, and the
//! two headline ratios within generous bounds. The full-resolution sweep is
//! the `fig3_1` bench binary.

use lwvmm::guest::{kernel::layout, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform, TimeStats};
use lwvmm::monitor::LvmmPlatform;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Raw,
    Lvmm,
    Hosted,
}

fn measure(kind: Kind, rate: u64, window_ms: u64) -> (f64, f64) {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate).build(&machine).unwrap();
    machine.load_program(&program);
    let clock = machine.config().clock_hz;
    let mut platform: Box<dyn Platform> = match kind {
        Kind::Raw => Box::new(RawPlatform::new(machine)),
        Kind::Lvmm => Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        Kind::Hosted => Box::new(HostedPlatform::new(machine, layout::ENTRY)),
    };
    platform.run_for(clock / 100); // 10 ms warmup
    let t0 = platform.machine().now();
    let s0: TimeStats = *platform.time_stats();
    let b0 = platform.machine().nic.counters().tx_bytes;
    platform.run_for(clock / 1000 * window_ms);
    let dt = (platform.machine().now() - t0) as f64 / clock as f64;
    let mbps = (platform.machine().nic.counters().tx_bytes - b0) as f64 * 8.0 / dt / 1e6;
    let load = platform.time_stats().since(&s0).cpu_load();
    (mbps, load)
}

#[test]
fn load_ordering_at_fixed_rate() {
    // At a rate all three can sustain, CPU load must order
    // raw < lvmm < hosted (the defining property of the comparison).
    let (_, raw) = measure(Kind::Raw, 25, 40);
    let (_, lv) = measure(Kind::Lvmm, 25, 40);
    let (_, ho) = measure(Kind::Hosted, 25, 40);
    assert!(raw < lv, "raw {raw:.3} !< lvmm {lv:.3}");
    assert!(lv < ho, "lvmm {lv:.3} !< hosted {ho:.3}");
}

#[test]
fn load_grows_with_rate_on_lvmm() {
    let (_, a) = measure(Kind::Lvmm, 25, 30);
    let (_, b) = measure(Kind::Lvmm, 50, 30);
    let (_, c) = measure(Kind::Lvmm, 100, 30);
    assert!(a < b && b < c, "load not monotonic: {a:.3} {b:.3} {c:.3}");
}

#[test]
fn saturation_ordering_and_headline_ratios() {
    // Ask every platform for far more than it can do and compare ceilings.
    let (raw, _) = measure(Kind::Raw, 950, 60);
    let (lv, _) = measure(Kind::Lvmm, 950, 60);
    let (ho, _) = measure(Kind::Hosted, 950, 60);
    assert!(
        raw > lv && lv > ho,
        "ordering violated: {raw:.0} {lv:.0} {ho:.0}"
    );

    // Headline A: the paper reports 5.4x over the conventional monitor.
    let a = lv / ho;
    assert!(
        (3.5..8.0).contains(&a),
        "lvmm/hosted ratio {a:.2} far from 5.4"
    );

    // Headline B: the paper reports ~26% of real hardware.
    let b = lv / raw;
    assert!(
        (0.15..0.40).contains(&b),
        "lvmm/raw ratio {b:.2} far from 0.26"
    );
}

#[test]
fn requested_rate_tracks_below_saturation() {
    for rate in [25u64, 50, 100] {
        let (mbps, _) = measure(Kind::Lvmm, rate, 40);
        let err = (mbps - rate as f64).abs() / rate as f64;
        assert!(err < 0.25, "lvmm at {rate} Mbps delivered {mbps:.1}");
    }
}
