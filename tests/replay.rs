//! Flight-recorder end-to-end tests: record/replay fidelity, time-travel
//! debugging over the wire protocol, and cross-platform divergence audits.

use lwvmm::debugger::{DbgError, Debugger, StopReason};
use lwvmm::guest::{apps, kernel::layout, GuestStats, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::{audit, ChromeTrace, Journal};

fn streaming_platform() -> Box<dyn Platform> {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    Box::new(LvmmPlatform::new(machine, layout::ENTRY))
}

fn chrome(platform: &dyn Platform) -> String {
    let mut t = ChromeTrace::new();
    t.add_platform(1, "lvmm", &platform.machine().obs);
    t.finish()
}

/// The tentpole acceptance check: replaying a recorded streaming-workload
/// journal on a freshly booted platform reproduces a byte-identical Chrome
/// trace, identical guest statistics and an identical RAM image.
#[test]
fn replay_reproduces_trace_stats_and_ram() {
    let mut rec = streaming_platform();
    rec.machine_mut().obs.enable_tracing();
    rec.machine_mut().obs.enable_journal("lvmm");
    let per_ms = rec.machine().config().clock_hz / 1_000;
    rec.run_for(20 * per_ms);
    let end = rec.machine().now();
    let mut journal: Journal = rec.machine().obs.journal().cloned().unwrap();
    journal.seal(end);
    assert!(!journal.events.is_empty(), "streaming run produced events");

    let mut rep = streaming_platform();
    rep.machine_mut().obs.enable_tracing();
    let reached = ReplayDriver::new(&journal).run(rep.as_mut());

    assert_eq!(reached, end, "replay reaches the recorded end cycle");
    assert_eq!(chrome(rep.as_ref()), chrome(rec.as_ref()), "trace bytes");
    assert_eq!(
        GuestStats::read(rep.machine()).unwrap(),
        GuestStats::read(rec.machine()).unwrap(),
        "guest statistics"
    );
    assert_eq!(
        rep.machine().mem.as_bytes(),
        rec.machine().mem.as_bytes(),
        "guest RAM image"
    );
}

/// The journal text format survives a save/parse round trip with inputs
/// and events intact, so recordings can be shipped as artifacts.
#[test]
fn journal_round_trips_through_text() {
    let mut rec = streaming_platform();
    rec.machine_mut().obs.enable_journal("lvmm");
    rec.machine_mut().uart_input(b"\x03"); // journaled host input
    let per_ms = rec.machine().config().clock_hz / 1_000;
    rec.run_for(5 * per_ms);
    let mut journal = rec.machine().obs.journal().cloned().unwrap();
    journal.seal(rec.machine().now());

    let parsed = Journal::parse(&journal.save()).expect("parses");
    assert_eq!(parsed, journal);
}

/// Acceptance: a wild guest write faults, and `reverse-step` over the wire
/// lands exactly on the faulting instruction — parked at its cycle, PC on
/// the store, one instant before the damage.
#[test]
fn reverse_step_lands_on_faulting_instruction() {
    // The guest spins for a while, then stores into monitor memory (a wild
    // write through a corrupted pointer). No trap vector is installed, so
    // the monitor's debug-on-fault policy stops it in the debugger.
    let program = hx_asm::assemble(
        "start:  li   t0, 500
         spin:   addi t0, t0, -1
                 bnez t0, spin
                 li   t1, 0x600000      ; monitor base for 8 MiB RAM
         wild:   sw   t0, 0(t1)
         halt:   j    halt
        ",
    )
    .unwrap();
    let wild = program.symbols.get("wild").unwrap();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let mut platform = LvmmPlatform::new(machine, program.base());
    platform.enable_flight_recorder(100_000);
    let mut dbg = Debugger::new(UartLink::new(platform));

    let stop = dbg.wait_stop().expect("guest faults into the debugger");
    assert!(
        matches!(stop, StopReason::Fault { pc, .. } if pc == wild),
        "expected fault at wild store, got {stop:?}"
    );
    let fault_seen_at = dbg.link_ref().platform.machine().now();

    let stop = dbg.reverse_step().expect("reverse step");
    match stop {
        StopReason::TimeTravel { pc, cycle } => {
            assert_eq!(pc, wild, "parked on the faulting instruction");
            assert!(cycle < fault_seen_at, "landed before the fault");
        }
        other => panic!("expected time-travel stop, got {other:?}"),
    }
    assert_eq!(dbg.link_ref().platform.machine().cpu.pc(), wild);
    assert!(dbg.link_ref().platform.guest_stopped());

    // Re-executing the instruction reproduces the fault deterministically.
    let again = dbg.step().expect("step over the wild write");
    assert!(
        matches!(again, StopReason::Fault { pc, .. } if pc == wild),
        "re-running the store faults again, got {again:?}"
    );
}

/// `seek` rewinds guest memory to its exact earlier contents; the rewound
/// timeline then diverges freely (new-branch semantics).
#[test]
fn seek_restores_earlier_guest_memory() {
    let program = apps::counter_guest();
    let counter = program.symbols.get("counter").unwrap();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let mut platform = LvmmPlatform::new(machine, program.base());
    platform.enable_flight_recorder(100_000);
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.link_mut().platform.run_for(80_000);
    dbg.halt().unwrap();
    let early_cycle = dbg.link_ref().platform.machine().now();
    let early_count = dbg.link_ref().platform.machine().mem.word(counter);
    assert!(early_count > 0, "counter running");

    dbg.resume().unwrap();
    dbg.link_mut().platform.run_for(400_000);
    dbg.halt().unwrap();
    let late_count = dbg.link_ref().platform.machine().mem.word(counter);
    assert!(late_count > early_count, "counter advanced");

    let stop = dbg.seek(early_cycle).expect("seek back");
    match stop {
        StopReason::TimeTravel { cycle, .. } => assert_eq!(cycle, early_cycle),
        other => panic!("expected time-travel stop, got {other:?}"),
    }
    assert_eq!(
        dbg.link_ref().platform.machine().mem.word(counter),
        early_count,
        "guest memory rewound to its exact earlier value"
    );
}

/// `reverse-continue` returns to the previous debugger stop on the recorded
/// timeline (here: the last breakpoint hit).
#[test]
fn reverse_continue_returns_to_previous_stop() {
    let program = apps::counter_guest();
    let bump = program.symbols.get("bump").unwrap();
    let counter = program.symbols.get("counter").unwrap();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let mut platform = LvmmPlatform::new(machine, program.base());
    platform.enable_flight_recorder(100_000);
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.halt().unwrap();
    dbg.set_breakpoint(bump).unwrap();
    dbg.continue_until_stop().unwrap();
    let count_first = dbg.link_ref().platform.machine().mem.word(counter);
    dbg.continue_until_stop().unwrap();
    let count_second = dbg.link_ref().platform.machine().mem.word(counter);
    assert!(count_second > count_first);

    let stop = dbg.reverse_continue().expect("reverse continue");
    match stop {
        StopReason::TimeTravel { pc, .. } => assert_eq!(pc, bump, "back on the breakpoint"),
        other => panic!("expected time-travel stop, got {other:?}"),
    }
    assert_eq!(
        dbg.link_ref().platform.machine().mem.word(counter),
        count_first,
        "guest state matches the earlier stop"
    );
}

/// Time-travel commands require the flight recorder; without it they fail
/// with a clean target error instead of corrupting the session.
#[test]
fn time_travel_without_recorder_is_rejected() {
    let program = apps::counter_guest();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, program.base());
    let mut dbg = Debugger::new(UartLink::new(platform));
    dbg.link_mut().platform.run_for(50_000);
    dbg.halt().unwrap();
    // err::RECORDER = 6.
    assert_eq!(dbg.reverse_step().unwrap_err(), DbgError::Target(6));
    assert_eq!(dbg.seek(0).unwrap_err(), DbgError::Target(6));
}

/// Divergence auditing: a same-platform replay's device-event streams are
/// identical to the recording's; the hosted baseline replaying the same
/// journal produces a strict prefix on the passthrough-I/O streams (it
/// moves less data in the same simulated time — the paper's headline).
#[test]
fn divergence_audit_same_platform_clean_cross_platform_prefix() {
    let per_ms;
    let journal_a = {
        let mut rec = streaming_platform();
        rec.machine_mut().obs.enable_journal("lvmm");
        per_ms = rec.machine().config().clock_hz / 1_000;
        rec.run_for(10 * per_ms);
        let mut j = rec.machine().obs.journal().cloned().unwrap();
        j.seal(rec.machine().now());
        j
    };

    // Same platform: every stream must match exactly.
    let mut same = streaming_platform();
    same.machine_mut().obs.enable_journal("lvmm");
    ReplayDriver::new(&journal_a).run(same.as_mut());
    let mut journal_same = same.machine().obs.journal().cloned().unwrap();
    journal_same.seal(same.machine().now());
    for s in audit(&journal_a, &journal_same) {
        assert!(
            s.clean(),
            "stream {} diverged on same-platform replay",
            s.name
        );
    }

    // Hosted baseline: the NIC stream is a strict prefix (fewer events, no
    // reordering or payload corruption).
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    let mut hosted: Box<dyn Platform> =
        Box::new(lwvmm::hosted::HostedPlatform::new(machine, layout::ENTRY));
    hosted.machine_mut().obs.enable_journal("hosted");
    ReplayDriver::new(&journal_a).run(hosted.as_mut());
    let mut journal_b = hosted.machine().obs.journal().cloned().unwrap();
    journal_b.seal(hosted.machine().now());

    let audits = audit(&journal_a, &journal_b);
    let nic = audits.iter().find(|s| s.name == "nic").unwrap();
    assert!(nic.len_b < nic.len_a, "hosted moves less NIC data");
    let d = nic.divergence.as_ref().expect("lengths differ");
    assert!(
        d.is_length_only(),
        "hosted NIC stream is a strict prefix, but diverged at {}: {:?} vs {:?}",
        d.index,
        d.a,
        d.b
    );
}
