//! End-to-end data-integrity tests: the streaming workload's wire output is
//! verified byte-for-byte against the deterministic disk content on every
//! platform — covering zero-copy DMA, scatter-gather TX, passthrough (lvmm)
//! and the double-copy host relay (hosted).

use lwvmm::guest::{kernel::layout, verify, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;

fn boot(rate: u64) -> (Machine, u64) {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate)
        .build(&machine)
        .expect("kernel assembles");
    machine.load_program(&program);
    let clock = machine.config().clock_hz;
    (machine, clock)
}

fn run_and_verify(platform: &mut dyn Platform, clock: u64, ms: u64) -> GuestStats {
    platform.machine_mut().nic.set_capture(true);
    platform.run_for(clock / 1_000 * ms);
    let stats = GuestStats::read(platform.machine()).expect("guest must finish booting");
    assert_eq!(stats.fault_cause, 0, "guest fault at {:#x}", stats.fault_pc);
    assert!(stats.booted, "guest must finish booting");
    let frames = platform.machine_mut().nic.take_captured();
    assert!(!frames.is_empty(), "stream must produce frames");
    verify::verify_frames(&frames).expect("wire data == disk data");
    assert_eq!(
        frames.len() as u64,
        platform.machine().nic.counters().tx_frames
    );
    stats
}

#[test]
fn raw_hardware_stream_is_correct() {
    let (machine, clock) = boot(100);
    let mut hw = RawPlatform::new(machine);
    let stats = run_and_verify(&mut hw, clock, 40);
    assert!(stats.frames > 100, "{stats:?}");
    assert!(stats.ticks > 30, "pacing ticks must arrive: {stats:?}");
}

#[test]
fn lvmm_stream_is_correct() {
    let (machine, clock) = boot(100);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let stats = run_and_verify(&mut vmm, clock, 40);
    assert!(stats.frames > 100, "{stats:?}");
    // Passthrough: zero emulation exits for disk/NIC data movement, but
    // plenty of interrupt virtualization.
    let ms = vmm.monitor_stats();
    assert!(ms.irqs_injected > 50);
    assert_eq!(ms.protection_violations, 0);
}

#[test]
fn hosted_stream_is_correct() {
    let (machine, clock) = boot(30);
    let mut vmm = HostedPlatform::new(machine, layout::ENTRY);
    let stats = run_and_verify(&mut vmm, clock, 40);
    assert!(stats.frames > 30, "{stats:?}");
    let hs = vmm.hosted_stats();
    assert!(hs.exits_mmio > 200, "every device access must exit: {hs:?}");
    assert!(
        hs.host_relay_ops > 30,
        "data must go through the host model"
    );
}

#[test]
fn nic_checksum_counter_matches_capture() {
    // The NIC's running FNV checksum must agree with a recomputation over
    // the captured frames — so the cheap counter can stand in for full
    // capture in long benchmark runs.
    let (machine, clock) = boot(100);
    let mut hw = RawPlatform::new(machine);
    hw.machine_mut().nic.set_capture(true);
    hw.run_for(clock / 50);
    let frames = hw.machine_mut().nic.take_captured();
    let mut fnv = 0xcbf2_9ce4_8422_2325u64;
    for f in &frames {
        fnv = lwvmm::machine::nic::fnv1a(fnv, f);
    }
    assert_eq!(hw.machine().nic.counters().tx_checksum, fnv);
}

#[test]
fn paced_rates_are_respected() {
    // At a rate below even the hosted monitor's ceiling (~27 Mbps), every
    // platform must deliver approximately the requested rate — the pacing
    // token bucket, not the platform, is the limit.
    for (name, mut platform, clock) in platforms(20) {
        platform.run_for(clock / 10); // 100 ms
        let bytes = platform.machine().nic.counters().tx_bytes;
        let seconds = platform.machine().now() as f64 / clock as f64;
        let mbps = bytes as f64 * 8.0 / seconds / 1e6;
        assert!(
            (15.0..25.0).contains(&mbps),
            "{name}: expected ~20 Mbps, measured {mbps:.1}"
        );
    }
}

fn platforms(rate: u64) -> Vec<(&'static str, Box<dyn Platform>, u64)> {
    let mut out: Vec<(&'static str, Box<dyn Platform>, u64)> = Vec::new();
    let (machine, clock) = boot(rate);
    out.push(("real-hw", Box::new(RawPlatform::new(machine)), clock));
    let (machine, clock) = boot(rate);
    out.push((
        "lvmm",
        Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        clock,
    ));
    let (machine, clock) = boot(rate);
    out.push((
        "hosted",
        Box::new(HostedPlatform::new(machine, layout::ENTRY)),
        clock,
    ));
    out
}

#[test]
fn identical_streams_across_platforms() {
    // The three platforms run the same image and must transmit the *same
    // byte stream* (prefix-wise; they advance at different speeds).
    let mut captures = Vec::new();
    for (_, mut platform, clock) in platforms(30) {
        platform.machine_mut().nic.set_capture(true);
        platform.run_for(clock / 50);
        captures.push(platform.machine_mut().nic.take_captured());
    }
    let shortest = captures.iter().map(Vec::len).min().unwrap();
    assert!(shortest > 20, "need a meaningful common prefix");
    for (i, frame) in captures[0][..shortest].iter().enumerate() {
        assert_eq!(frame, &captures[1][i], "frame {i}: raw vs lvmm");
        assert_eq!(frame, &captures[2][i], "frame {i}: raw vs hosted");
    }
}
