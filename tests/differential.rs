//! Differential testing: the lightweight monitor must be **transparent**.
//!
//! For randomly generated guest programs, the architectural state a guest
//! computes under the monitor (deprivileged, shadow-paged, trap-emulated)
//! must equal the state it computes on raw hardware. This is the deepest
//! correctness property of the reproduction — the paper's monitor promises
//! to run "any OSs running on PC/AT architectures" unmodified.

use hx_cpu::isa::{AluOp, BranchCond, Instr, LoadKind, Reg, StoreKind};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;
use proptest::prelude::*;

/// Sandbox data region the generated programs may address.
const DATA_BASE: u32 = 0x8000;
const CODE_BASE: u32 = 0x1000;

/// A safely executable random instruction: ALU ops, sandboxed memory
/// accesses, and strictly forward branches (no loops, no privileged ops).
fn arb_safe_instr() -> impl Strategy<Value = Instr> {
    let reg = || (1u8..16).prop_map(|n| Reg::new(n).unwrap());
    prop_oneof![
        4 => (proptest::sample::select(&AluOp::ALL[..]), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        4 => (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        2 => (reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        2 => (reg(), reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srli { rd, rs1, shamt }),
        // Loads/stores: base register is r20 (pinned to DATA_BASE by the
        // prologue), offsets word-aligned within the sandbox.
        2 => (reg(), (0i16..1024).prop_map(|o| o * 4 % 4096)).prop_map(|(rd, offset)| {
            Instr::Load { kind: LoadKind::W, rd, rs1: Reg::R20, offset }
        }),
        2 => (reg(), (0i16..1024).prop_map(|o| o * 4 % 4096)).prop_map(|(rs2, offset)| {
            Instr::Store { kind: StoreKind::W, rs1: Reg::R20, rs2, offset }
        }),
        // Forward-only short branches: always make progress.
        1 => (
            prop_oneof![Just(BranchCond::Eq), Just(BranchCond::Ne), Just(BranchCond::Ltu)],
            reg(),
            reg(),
            (1i16..4)
        )
            .prop_map(|(cond, rs1, rs2, skip)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: (skip + 1) * 4,
            }),
    ]
}

/// Builds the test image: pin r20 to the sandbox, seed some registers,
/// run the random body, then `ebreak`.
fn build_image(body: &[Instr]) -> Vec<u32> {
    let mut words = Vec::new();
    words.push(
        Instr::Lui {
            rd: Reg::R20,
            imm: 0,
        }
        .encode(),
    );
    words.push(
        Instr::Ori {
            rd: Reg::R20,
            rs1: Reg::R20,
            imm: DATA_BASE as i16,
        }
        .encode(),
    );
    for i in 1..16u8 {
        words.push(
            Instr::Addi {
                rd: Reg::new(i).unwrap(),
                rs1: Reg::R0,
                imm: (i as i16) * 257 - 2048,
            }
            .encode(),
        );
    }
    words.extend(body.iter().map(|i| i.encode()));
    // Terminator, padded so a trailing forward branch (max skip 3) still
    // lands on an ebreak.
    for _ in 0..5 {
        words.push(
            Instr::Sys {
                op: hx_cpu::isa::SysOp::Ebreak,
            }
            .encode(),
        );
    }
    words
}

fn load_machine(words: &[u32]) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    for (i, w) in words.iter().enumerate() {
        machine
            .mem
            .write(CODE_BASE + (i as u32) * 4, *w, hx_cpu::MemSize::Word)
            .unwrap();
    }
    // Seed the sandbox with a recognizable pattern so loads see data.
    for i in 0..1024u32 {
        machine
            .mem
            .write(
                DATA_BASE + i * 4,
                i.wrapping_mul(0x9e37_79b9),
                hx_cpu::MemSize::Word,
            )
            .unwrap();
    }
    machine.cpu.set_pc(CODE_BASE);
    machine
}

/// Final architectural state: registers + PC + the data sandbox.
fn snapshot(machine: &Machine) -> (Vec<u32>, u32, Vec<u8>) {
    (
        machine.cpu.regs().to_vec(),
        machine.cpu.pc(),
        machine.mem.as_bytes()[DATA_BASE as usize..(DATA_BASE + 4096) as usize].to_vec(),
    )
}

/// Runs on raw hardware until the terminating `ebreak` trap. The stop PC
/// is taken from the EPC csr (architectural delivery moved the live PC to
/// the trap vector).
fn run_raw(words: &[u32]) -> (Vec<u32>, u32, Vec<u8>) {
    let mut hw = RawPlatform::new(load_machine(words));
    for _ in 0..1_000_000 {
        hw.step();
        if hw.machine().cpu.read_csr(hx_cpu::Csr::Cause) == hx_cpu::Cause::Breakpoint.code() {
            let (regs, _, mem) = snapshot(hw.machine());
            return (regs, hw.machine().cpu.read_csr(hx_cpu::Csr::Epc), mem);
        }
    }
    panic!("raw run did not terminate");
}

/// Runs under a monitor until the guest's unhandled `ebreak` parks it.
fn run_lvmm(words: &[u32]) -> (Vec<u32>, u32, Vec<u8>) {
    let mut vmm = LvmmPlatform::new(load_machine(words), CODE_BASE);
    for _ in 0..1_000_000 {
        vmm.step();
        if vmm.guest_stopped() {
            return snapshot(vmm.machine());
        }
    }
    panic!("lvmm run did not terminate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Register file and data memory after a random program are identical
    /// on raw hardware and under the lightweight monitor.
    #[test]
    fn lvmm_is_transparent(body in proptest::collection::vec(arb_safe_instr(), 1..60)) {
        let words = build_image(&body);
        let (raw_regs, raw_pc, raw_mem) = run_raw(&words);
        let (lv_regs, lv_pc, lv_mem) = run_lvmm(&words);
        // The stop PC is the ebreak address in both worlds.
        prop_assert_eq!(raw_pc, lv_pc);
        prop_assert_eq!(raw_regs, lv_regs);
        prop_assert_eq!(raw_mem, lv_mem);
    }
}

/// The predecoded-instruction cache must be *simulation-invisible*: a full
/// streaming run with the cache on and off produces identical machine
/// state, guest statistics, exit histograms and trace spans on every
/// platform. Only host-side speed may differ.
#[test]
fn decode_cache_is_simulation_invisible_on_every_platform() {
    use lwvmm::guest::{kernel::layout, GuestStats, Workload};
    use lwvmm::obs::journal::{fnv1a, FNV_OFFSET};

    fn boot_workload() -> Machine {
        let mut machine = Machine::new(MachineConfig::default());
        let program = Workload::new(80).build(&machine).unwrap();
        machine.load_program(&program);
        machine
    }

    #[allow(clippy::type_complexity)]
    fn run(
        mut platform: Box<dyn Platform>,
        cache: bool,
    ) -> (
        u64,
        u64,
        u32,
        Vec<u32>,
        u64,
        GuestStats,
        Vec<lwvmm::obs::Span>,
        Vec<u64>,
    ) {
        platform.machine_mut().cpu.set_decode_cache(cache);
        platform.machine_mut().obs.enable_tracing();
        platform.run_for(MachineConfig::default().clock_hz / 50);
        let m = platform.machine();
        let decode = m.cpu.decode_stats();
        if cache {
            assert!(decode.hits > 0, "cache on but never hit");
        } else {
            assert_eq!(decode.hits, 0, "cache off but hit");
            assert_eq!(decode.fast_fetches, 0, "cache off but fast-fetched");
        }
        (
            m.now(),
            m.cpu.cycles(),
            m.cpu.pc(),
            m.cpu.regs().to_vec(),
            fnv1a(FNV_OFFSET, m.mem.as_bytes()),
            GuestStats::read(m).expect("guest stats"),
            m.obs.spans.spans().to_vec(),
            m.obs.exits.counts().to_vec(),
        )
    }

    let platforms: [fn() -> Box<dyn Platform>; 3] = [
        || Box::new(RawPlatform::new(boot_workload())),
        || Box::new(LvmmPlatform::new(boot_workload(), layout::ENTRY)),
        || Box::new(HostedPlatform::new(boot_workload(), layout::ENTRY)),
    ];
    for make in platforms {
        let on = run(make(), true);
        let off = run(make(), false);
        assert_eq!(on, off);
    }
}

#[test]
fn hosted_monitor_is_transparent_on_a_fixed_program() {
    // The hosted monitor shares the CPU-virtualization machinery; one
    // deterministic spot check keeps it honest too.
    let body: Vec<Instr> = (0..40)
        .map(|i| {
            if i % 3 == 0 {
                Instr::Addi {
                    rd: Reg::R5,
                    rs1: Reg::R5,
                    imm: 7,
                }
            } else if i % 3 == 1 {
                Instr::Store {
                    kind: StoreKind::W,
                    rs1: Reg::R20,
                    rs2: Reg::R5,
                    offset: (i * 4) as i16,
                }
            } else {
                Instr::Alu {
                    op: AluOp::Xor,
                    rd: Reg::R6,
                    rs1: Reg::R6,
                    rs2: Reg::R5,
                }
            }
        })
        .collect();
    let words = build_image(&body);
    let raw = run_raw(&words);

    let mut ho = HostedPlatform::new(load_machine(&words), CODE_BASE);
    for _ in 0..1_000_000 {
        ho.step();
        // The hosted monitor reflects the unhandled breakpoint into the
        // guest (tvec = 0): the guest parks at PC 0 with CAUSE set in the
        // virtual CPU.
        if ho.vcpu().cause == hx_cpu::Cause::Breakpoint.code() {
            break;
        }
    }
    assert_eq!(ho.vcpu().cause, hx_cpu::Cause::Breakpoint.code());
    // EPC points at the ebreak, like the raw CAUSE/EPC pair.
    assert_eq!(ho.vcpu().epc, raw.1);
    assert_eq!(ho.machine().cpu.regs().to_vec(), raw.0);
    let mem = ho.machine().mem.as_bytes()[DATA_BASE as usize..(DATA_BASE + 4096) as usize].to_vec();
    assert_eq!(mem, raw.2);
}
