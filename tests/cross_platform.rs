//! Cross-platform and whole-system determinism tests, plus watchpoint
//! corner cases that need the full stack.

use lwvmm::debugger::{Debugger, StopReason};
use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, UartLink};

fn boot_workload(rate: u64) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate).build(&machine).unwrap();
    machine.load_program(&program);
    machine
}

#[test]
fn full_stack_determinism_per_platform() {
    // Two identical runs of the full streaming stack produce bit-identical
    // simulation results on every platform.
    fn fingerprint(platform: &mut dyn Platform, clock: u64) -> (u64, u64, u64, u64, u32) {
        platform.run_for(clock / 50);
        let n = platform.machine().nic.counters();
        let s = GuestStats::read(platform.machine()).expect("guest stats");
        (
            platform.machine().now(),
            platform.machine().cpu.cycles(),
            n.tx_checksum,
            n.tx_frames,
            s.frames,
        )
    }
    let clock = MachineConfig::default().clock_hz;

    let runs: Vec<_> = (0..2)
        .map(|_| {
            let mut raw = RawPlatform::new(boot_workload(80));
            let mut lv = LvmmPlatform::new(boot_workload(80), layout::ENTRY);
            let mut ho = HostedPlatform::new(boot_workload(80), layout::ENTRY);
            (
                fingerprint(&mut raw, clock),
                fingerprint(&mut lv, clock),
                fingerprint(&mut ho, clock),
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn stuck_guest_stops_run_for_on_every_platform() {
    // A `wfi` with no timer programmed and no pending device events can
    // never wake: every platform must detect the stuck machine through the
    // shared engine and return early from `run_for`, whether the `wfi` was
    // executed architecturally (raw) or emulated as a virtual idle (both
    // monitors).
    let program = hx_asm::assemble("start: wfi\nhalt: j halt\n").unwrap();
    let boot = || {
        let mut machine = Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..Default::default()
        });
        machine.load_program(&program);
        machine
    };
    let entry = program.symbols.get("start").unwrap_or(program.base());
    let mut platforms: Vec<Box<dyn Platform>> = vec![
        Box::new(RawPlatform::new(boot())),
        Box::new(LvmmPlatform::new(boot(), entry)),
        Box::new(HostedPlatform::new(boot(), entry)),
    ];
    for platform in &mut platforms {
        let ran = platform.run_for(1_000_000);
        assert!(
            ran < 1_000_000,
            "{}: wfi with no wake source must get stuck, ran {ran}",
            platform.name()
        );
    }
}

#[test]
fn debug_session_is_deterministic() {
    // Even a full debugger session (break-in timing included) replays
    // identically: the whole stack is wall-clock-free.
    fn session() -> (u32, Vec<u32>, u64) {
        let program = lwvmm::guest::apps::counter_guest();
        let mut machine = Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..Default::default()
        });
        machine.load_program(&program);
        let platform = LvmmPlatform::new(machine, program.base());
        let mut dbg = Debugger::new(UartLink::new(platform));
        dbg.link_mut().platform.run_for(123_456);
        let stop = dbg.halt().unwrap();
        let regs = dbg.read_registers().unwrap();
        let now = dbg.link_ref().platform.machine().now();
        (stop.pc(), regs.gprs.to_vec(), now)
    }
    assert_eq!(session(), session());
}

#[test]
fn watchpoint_adjacent_stores_are_emulated_not_trapped() {
    // A watchpoint write-protects its whole page; stores to *other* bytes
    // of that page must be completed transparently by the monitor (counted
    // as emulated stores), not reported to the debugger.
    let src = "
        start:  li   t0, 0x9000
                li   t1, 0x111
                sw   t1, 0x100(t0)     ; same page, NOT watched
                li   t2, 0x222
                sw   t2, 0x200(t0)     ; same page, NOT watched
                li   s0, 1
        halt:   j halt
    ";
    let program = hx_asm::assemble(src).unwrap();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, program.base());
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.halt().unwrap();
    dbg.set_watchpoint(0x9000, 4).unwrap(); // watch only the first word
    dbg.resume().unwrap();
    dbg.link_mut().platform.run_for(500_000);

    let platform = &dbg.link_ref().platform;
    assert!(!platform.guest_stopped(), "no false watchpoint hit");
    assert_eq!(
        platform.machine().cpu.reg(hx_cpu::Reg::R18),
        1,
        "guest completed"
    );
    assert_eq!(platform.machine().mem.word(0x9100), 0x111);
    assert_eq!(platform.machine().mem.word(0x9200), 0x222);
    assert!(
        platform.monitor_stats().emulated_stores >= 2,
        "adjacent stores must take the emulation path: {:?}",
        platform.monitor_stats()
    );
}

#[test]
fn watchpoint_in_page_with_code_still_fires_exactly() {
    let src = "
        start:  li   t0, 0x9000
                li   t1, 0xaa
                sw   t1, 8(t0)         ; adjacent (emulated)
                sw   t1, 0(t0)         ; the watched word
                li   s0, 1
        halt:   j halt
    ";
    let program = hx_asm::assemble(src).unwrap();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, program.base());
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.halt().unwrap();
    dbg.set_watchpoint(0x9000, 4).unwrap();
    let stop = dbg.continue_until_stop().unwrap();
    match stop {
        StopReason::Watchpoint { addr, .. } => assert_eq!(addr, 0x9000),
        other => panic!("expected the watchpoint, got {other:?}"),
    }
    // s0 not yet set: we stopped before the store retired.
    assert_eq!(
        dbg.link_ref().platform.machine().cpu.reg(hx_cpu::Reg::R18),
        0
    );
    // The adjacent store already landed.
    assert_eq!(dbg.link_ref().platform.machine().mem.word(0x9008), 0xaa);
}

#[test]
fn guest_stats_agree_across_platforms_at_same_point() {
    // Pause each platform at (approximately) the same number of emitted
    // frames and compare guest-visible statistics: the virtualized worlds
    // must be indistinguishable to the guest.
    fn stats_at_frames(mut platform: Box<dyn Platform>, target: u32) -> GuestStats {
        for _ in 0..100_000 {
            platform.run_for(20_000);
            // Before boot the stats block is not meaningful yet.
            if let Ok(s) = GuestStats::read(platform.machine()) {
                if s.frames >= target {
                    return s;
                }
            }
        }
        panic!("never reached {target} frames");
    }
    let raw = stats_at_frames(Box::new(RawPlatform::new(boot_workload(50))), 120);
    let lv = stats_at_frames(
        Box::new(LvmmPlatform::new(boot_workload(50), layout::ENTRY)),
        120,
    );
    // Bytes-per-frame accounting must agree exactly for equal frame counts.
    assert_eq!(raw.fault_cause, 0);
    assert_eq!(lv.fault_cause, 0);
    let per_frame_raw = raw.bytes / raw.frames as u64;
    let per_frame_lv = lv.bytes / lv.frames as u64;
    assert_eq!(per_frame_raw, per_frame_lv);
}
