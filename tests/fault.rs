//! Survivability end-to-end tests: the deterministic fault-injection
//! campaign (tentpole of the debug-link hardening work) exercised over the
//! full stack.
//!
//! The claims under test, straight from the paper's debugging story:
//!
//! - the LVMM-resident stub answers `?`/`g`/`m` after **every** guest-side
//!   fault class, even when the guest itself is wrecked;
//! - raw hardware has no such safety net — a wild-kernel-write campaign
//!   kills the guest;
//! - a faulty run is a pure function of `(program, seed)`: re-running and
//!   replaying the flight-recorder journal are both byte-identical;
//! - a real debug session over a lossy serial link (drops, duplicates,
//!   truncations) completes via retransmission instead of wedging.

use lwvmm::debugger::{DbgError, Debugger, LossyLink};
use lwvmm::fault::{FaultKind, FaultPlan, LinkFaultConfig};
use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmConfig, LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::Journal;

const PER_MS: u64 = 150_000; // cycles per simulated ms at the default clock

fn faulty_machine(plan: FaultPlan) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    machine.enable_fault_injection(plan);
    machine
}

fn campaign_plan(seed: u64, limit_monitor: bool) -> FaultPlan {
    let ram = MachineConfig::default().ram_size as u32;
    let limit = if limit_monitor {
        ram - LvmmConfig::default().monitor_mem
    } else {
        ram
    };
    FaultPlan::new(seed)
        .period(30_000)
        .initial_delay(2 * PER_MS)
        .wild(ram, limit)
}

/// A reply is "answered" when the stub produced something well-formed —
/// `Ok` or a target error code. Only timeouts / protocol violations count
/// as a dead stub.
fn answered<T>(r: Result<T, DbgError>) -> bool {
    !matches!(r, Err(DbgError::Timeout) | Err(DbgError::Protocol(_)))
}

/// The survivability headline: for each fault class, wreck the guest under
/// the lightweight monitor for 12 simulated ms, then demand `?`/`g`/`m`
/// service from the stub.
#[test]
fn lvmm_stub_answers_after_every_fault_class() {
    for fault in FaultKind::ALL {
        let plan = campaign_plan(0xfa + fault.code() as u64, true).only(fault);
        let machine = faulty_machine(plan);
        let mut platform = LvmmPlatform::new(machine, layout::ENTRY);
        platform.run_for(12 * PER_MS);
        assert!(
            platform
                .machine()
                .fault_stats()
                .is_some_and(|f| f.total() > 0),
            "{}: campaign never fired",
            fault.label()
        );

        let mut dbg = Debugger::new(UartLink {
            platform,
            slice: 2_000,
        });
        dbg.set_pump_budget(2_000);
        assert!(
            answered(dbg.halt()),
            "{}: break-in unanswered",
            fault.label()
        );
        assert!(
            answered(dbg.query_stop()),
            "{}: `?` unanswered",
            fault.label()
        );
        assert!(
            answered(dbg.read_registers()),
            "{}: `g` unanswered",
            fault.label()
        );
        assert!(
            answered(dbg.read_memory(layout::ENTRY, 16)),
            "{}: `m` unanswered",
            fault.label()
        );
    }
}

/// The contrast case: the same wild-kernel-write campaign on raw hardware
/// (no monitor, nothing blocked) corrupts the kernel image and the guest
/// stops making progress.
#[test]
fn raw_platform_dies_under_wild_kernel_writes() {
    let plan = campaign_plan(0xdead, false)
        .only(FaultKind::WildWriteKernel)
        .period(10_000);
    let mut platform = RawPlatform::new(faulty_machine(plan));
    platform.run_for(30 * PER_MS);
    let before = GuestStats::read(platform.machine()).ok();
    platform.run_for(10 * PER_MS);
    let after = GuestStats::read(platform.machine()).ok();
    let died = match (before, after) {
        // Stats block unreadable: the guest shredded its own bookkeeping.
        (None, _) | (_, None) => true,
        (Some(b), Some(a)) => a.fault_cause != 0 || (a.ticks == b.ticks && a.frames == b.frames),
    };
    assert!(
        died,
        "raw guest survived ~450 kernel wild writes: {after:?}"
    );
}

/// Faulty runs are deterministic at the platform level: two boots with the
/// same plan agree on every byte of RAM, the clock, and the fault counters.
#[test]
fn faulty_lvmm_runs_are_bit_identical() {
    let run = || {
        let machine = faulty_machine(campaign_plan(77, true));
        let mut platform = LvmmPlatform::new(machine, layout::ENTRY);
        platform.run_for(15 * PER_MS);
        (
            platform.machine().now(),
            platform.machine().cpu.instret(),
            lwvmm::obs::digest(platform.machine().mem.as_bytes()),
            platform.machine().fault_stats().copied(),
        )
    };
    assert_eq!(run(), run());
}

/// Replaying a recorded faulty run through the flight recorder is
/// byte-identical to the live run — on all three platforms.
#[test]
fn faulty_runs_replay_identically_on_all_platforms() {
    for which in ["raw", "lvmm", "hosted"] {
        let build = |plan: FaultPlan| -> Box<dyn Platform> {
            let machine = faulty_machine(plan);
            match which {
                "raw" => Box::new(RawPlatform::new(machine)),
                "lvmm" => Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
                _ => Box::new(HostedPlatform::new(machine, layout::ENTRY)),
            }
        };
        let plan = campaign_plan(99, which != "raw");

        let mut rec = build(plan.clone());
        rec.machine_mut().obs.enable_journal(which);
        rec.run_for(10 * PER_MS);
        let end = rec.machine().now();
        let mut journal: Journal = rec.machine().obs.journal().cloned().unwrap();
        journal.seal(end);
        assert!(
            rec.machine().fault_stats().unwrap().total() > 0,
            "{which}: campaign never fired"
        );

        let mut rep = build(plan);
        let reached = ReplayDriver::new(&journal).run(rep.as_mut());
        assert_eq!(reached, end, "{which}: replay end cycle");
        assert_eq!(
            rep.machine().mem.as_bytes(),
            rec.machine().mem.as_bytes(),
            "{which}: RAM image"
        );
        assert_eq!(
            rep.machine().fault_stats(),
            rec.machine().fault_stats(),
            "{which}: fault counters"
        );
    }
}

/// A full debug session against the *real* stub over a lossy line: bytes
/// are dropped, duplicated and truncated in both directions, and the
/// bounded retransmission policy still lands every command. (Bit flips are
/// left out here: the 8-bit additive checksum can be fooled by flip pairs,
/// which is a protocol property, not a wedge — the rdbg proptest covers
/// that envelope.)
#[test]
fn debug_session_completes_over_lossy_uart() {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    let mut platform = LvmmPlatform::new(machine, layout::ENTRY);
    platform.run_for(5 * PER_MS);

    // Harsher than `lossy()`: the whole session is only a few hundred bytes,
    // so the per-byte rates must be high enough that faults certainly fire.
    let cfg = LinkFaultConfig {
        seed: 0x11_4b,
        flip_bp: 0,
        drop_bp: 150,
        dup_bp: 150,
        trunc_bp: 30,
    };
    let link = LossyLink::new(
        UartLink {
            platform,
            slice: 2_000,
        },
        cfg,
    );
    let mut dbg = Debugger::new(link);
    dbg.set_pump_budget(4_000);

    // Short-packet commands only: at these loss rates a ~25-byte frame
    // retransmits its way through, while a ~270-byte `g` reply would be
    // mangled almost every transmission — that envelope (and `g` itself)
    // is covered by the rdbg lossy proptest at gentler rates.
    dbg.halt().expect("halt over lossy line");
    dbg.query_stop().expect("query stop");
    dbg.write_memory(0x2000, &[0xaa, 0xbb, 0xcc, 0xdd])
        .expect("write memory");
    assert_eq!(
        dbg.read_memory(0x2000, 4).expect("read memory"),
        vec![0xaa, 0xbb, 0xcc, 0xdd]
    );
    dbg.resume().expect("resume");

    // The line really was lossy in at least one direction.
    let faults = |s: lwvmm::fault::LinkStats| s.dropped + s.duplicated + s.truncated;
    let tx = dbg.link_ref().to_target_stats();
    let rx = dbg.link_ref().to_host_stats();
    assert!(
        faults(tx) + faults(rx) > 0,
        "no link faults fired: {tx:?} {rx:?}"
    );
}
