//! Three-level memory-protection tests (the paper's §2 mechanism): the
//! application, the guest OS, and the monitor are isolated from one another
//! even though the hardware has only two privilege levels.

use lwvmm::guest::apps;
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmConfig, LvmmPlatform};

fn machine_with(program: &hx_asm::Program) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        ram_size: 16 << 20,
        ..Default::default()
    });
    machine.load_program(program);
    machine
}

/// Address where the protection guest records the fault cause it observed.
const OBSERVED: u32 = 0x900;

#[test]
fn level1_app_cannot_touch_kernel_pages_lvmm() {
    let program = apps::protection_guest();
    let mut vmm = LvmmPlatform::new(machine_with(&program), program.base());
    vmm.run_for(3_000_000);
    // The user task's store to a kernel page page-faulted into the *guest*
    // kernel (not the monitor, not the host).
    assert_eq!(
        vmm.machine().mem.word(OBSERVED),
        hx_cpu::Cause::StorePageFault.code(),
        "guest kernel observed the app's fault"
    );
    assert_eq!(vmm.vcpu().vmode, hx_cpu::Mode::Supervisor);
}

#[test]
fn level1_app_cannot_touch_kernel_pages_raw() {
    // Two-level protection also works on bare hardware (the baseline the
    // paper starts from): same guest, same observed fault.
    let program = apps::protection_guest();
    let mut hw = RawPlatform::new(machine_with(&program));
    hw.run_for(3_000_000);
    assert_eq!(
        hw.machine().mem.word(OBSERVED),
        hx_cpu::Cause::StorePageFault.code()
    );
}

#[test]
fn level1_app_cannot_touch_kernel_pages_hosted() {
    let program = apps::protection_guest();
    let mut vmm = HostedPlatform::new(machine_with(&program), program.base());
    vmm.run_for(6_000_000);
    assert_eq!(
        vmm.machine().mem.word(OBSERVED),
        hx_cpu::Cause::StorePageFault.code()
    );
}

#[test]
fn level3_kernel_cannot_touch_monitor_memory() {
    // A guest kernel (virtual supervisor!) attacking the monitor region
    // directly: blocked, counted, and survivable.
    let src = "
        start:  csrw tvec, caught
                li   t0, 0xe80000      ; inside the monitor region (16MB-2MB+)
                li   t1, 0x41414141
                sw   t1, 0(t0)
                li   s0, 1             ; never reached
        halt:   j halt
        caught: csrr s1, cause
        spin:   j spin
    ";
    let program = hx_asm::assemble(src).unwrap();
    let mut vmm = LvmmPlatform::new(machine_with(&program), program.base());
    let probe = 0xe8_0000u32;
    assert!(probe >= vmm.monitor_base());
    vmm.run_for(1_000_000);
    assert_eq!(
        vmm.machine().cpu.reg(hx_cpu::Reg::R18),
        0,
        "store must not retire"
    );
    assert_eq!(
        vmm.machine().cpu.reg(hx_cpu::Reg::R19),
        hx_cpu::Cause::StorePageFault.code(),
        "guest sees an ordinary page fault"
    );
    assert!(vmm.monitor_stats().protection_violations >= 1);
    assert_ne!(vmm.machine().mem.word(probe), 0x4141_4141);
}

#[test]
fn level3_kernel_cannot_map_monitor_memory_via_page_tables() {
    // Subtler attack: the guest builds a page table whose leaf points into
    // the monitor region, then dereferences it. The shadow pager must
    // refuse to materialize the mapping.
    let src = "
        .equ PT_ROOT, 0x100000
        .equ PT_L2,   0x101000
        start:  csrw tvec, caught
                ; L1[0] -> L2
                li   t0, PT_ROOT
                li   t1, PT_L2 + 1
                sw   t1, 0(t0)
                ; identity map our code/data pages (16 pages, RWX)
                li   t0, PT_L2
                li   t1, 0xf
                li   t2, 16
        lp:     sw   t1, 0(t0)
                addi t0, t0, 4
                li   t3, 0x1000
                add  t1, t1, t3
                addi t2, t2, -1
                bnez t2, lp
                ; map the page-table pages themselves
                li   t0, PT_L2 + 0x400
                li   t1, PT_ROOT + 0xf
                sw   t1, 0(t0)
                li   t1, PT_L2 + 0xf
                sw   t1, 4(t0)
                ; VA 0x5000 -> monitor memory, guest-RWX
                li   t0, PT_L2 + 5*4
                li   t1, 0xe80000 + 0xf
                sw   t1, 0(t0)
                li   t0, PT_ROOT + 1
                csrw ptbr, t0
                tlbflush
                ; dereference the treacherous mapping
                li   t0, 0x5000
                li   t1, 0x42424242
                sw   t1, 0(t0)
                li   s0, 1             ; never reached
        halt:   j halt
        caught: csrr s1, cause
        spin:   j spin
    ";
    let program = hx_asm::assemble(src).unwrap();
    let mut vmm = LvmmPlatform::new(machine_with(&program), program.base());
    vmm.run_for(2_000_000);
    assert_eq!(
        vmm.machine().cpu.reg(hx_cpu::Reg::R18),
        0,
        "store must not retire"
    );
    assert_eq!(
        vmm.machine().cpu.reg(hx_cpu::Reg::R19),
        hx_cpu::Cause::StorePageFault.code()
    );
    assert!(vmm.monitor_stats().protection_violations >= 1);
    assert_ne!(vmm.machine().mem.word(0xe8_0000), 0x4242_4242);
}

#[test]
fn guest_page_tables_pointing_into_monitor_are_rejected() {
    // Even the page-table *pointers* are validated: a root or L1 entry in
    // monitor memory is a protection violation, not a monitor read.
    let src = "
        start:  csrw tvec, caught
                li   t0, 0xe80001      ; PTBR root inside the monitor + enable
                csrw ptbr, t0
                tlbflush
                lw   t1, 0(zero)       ; any access now walks the evil root
                li   s0, 1
        halt:   j halt
        caught: csrr s1, cause
        spin:   j spin
    ";
    let program = hx_asm::assemble(src).unwrap();
    let mut vmm = LvmmPlatform::new(machine_with(&program), program.base());
    vmm.run_for(1_000_000);
    assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R18), 0);
    assert!(vmm.monitor_stats().protection_violations >= 1);
}

#[test]
fn monitor_region_size_is_configurable() {
    let program = apps::counter_guest();
    let machine = machine_with(&program);
    let vmm = LvmmPlatform::with_config(
        machine,
        program.base(),
        LvmmConfig {
            monitor_mem: 4 << 20,
            debug_on_unhandled_fault: true,
        },
    );
    assert_eq!(vmm.monitor_base(), (16 << 20) - (4 << 20));
}
