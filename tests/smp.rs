//! SMP end-to-end tests: multi-core determinism and record/replay identity
//! on all three platforms, IPI delivery ordering, time travel over
//! multi-core state, and the cross-core race demo.

use lwvmm::debugger::{Debugger, StopReason};
use lwvmm::fault::{FaultKind, FaultPlan};
use lwvmm::guest::apps::{self, smp_layout};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{smp, Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::Journal;
use proptest::prelude::*;

const PLATFORMS: [&str; 3] = ["raw", "lvmm", "hosted"];

fn smp_machine(program: &lwvmm::asm::Program, cores: usize, quantum: u64) -> Machine {
    let mut m = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        num_cores: cores,
        sched_quantum: quantum,
        ..MachineConfig::default()
    });
    m.load_program(program);
    m
}

fn boot(
    kind: &str,
    program: &lwvmm::asm::Program,
    cores: usize,
    quantum: u64,
) -> Box<dyn Platform> {
    let machine = smp_machine(program, cores, quantum);
    let entry = program.symbols.get("start").expect("start symbol");
    match kind {
        "raw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, entry)),
        "hosted" => Box::new(HostedPlatform::new(machine, entry)),
        other => panic!("unknown platform {other}"),
    }
}

/// Per-core architectural state: pc, instret, register file.
type CoreState = (u32, u64, Vec<u32>);

/// Everything a run can influence: time, per-core architectural state and
/// the full RAM image (hashed down so failures print something readable).
fn fingerprint(p: &dyn Platform, cores: usize) -> (u64, Vec<CoreState>, u64) {
    use lwvmm::obs::journal::{fnv1a, FNV_OFFSET};
    let m = p.machine();
    let per_core = (0..cores)
        .map(|i| {
            let c = m.core(i);
            (c.pc(), c.instret(), c.regs().to_vec())
        })
        .collect();
    let ram = fnv1a(FNV_OFFSET, m.mem.as_bytes());
    (m.now(), per_core, ram)
}

fn word(p: &dyn Platform, addr: u32) -> u32 {
    p.machine().mem.word(addr)
}

// ------------------------------------------------------------------------
// Determinism: two fresh runs are byte-identical at every core count.

#[test]
fn smp_runs_are_deterministic_on_every_platform() {
    let program = apps::smp_ping_guest();
    for kind in PLATFORMS {
        for cores in [2, 4] {
            let run = || {
                let mut p = boot(kind, &program, cores, 5_000);
                p.machine_mut().obs.enable_journal(kind);
                p.run_for(400_000);
                let journal = p.machine().obs.journal().cloned().unwrap().save();
                (fingerprint(p.as_ref(), cores), journal)
            };
            let (fp_a, j_a) = run();
            let (fp_b, j_b) = run();
            assert_eq!(fp_a, fp_b, "{kind} at {cores} cores: state");
            assert_eq!(j_a, j_b, "{kind} at {cores} cores: journal bytes");
        }
    }
}

// ------------------------------------------------------------------------
// Record/replay identity: a recorded multi-core journal replayed on a
// fresh platform reproduces the exact end state.

#[test]
fn smp_record_replay_identity_on_every_platform() {
    let program = apps::smp_ping_guest();
    for kind in PLATFORMS {
        for cores in [2, 4] {
            let mut rec = boot(kind, &program, cores, 5_000);
            rec.machine_mut().obs.enable_journal(kind);
            rec.run_for(400_000);
            let end = rec.machine().now();
            let mut journal: Journal = rec.machine().obs.journal().cloned().unwrap();
            journal.seal(end);

            let mut rep = boot(kind, &program, cores, 5_000);
            let reached = ReplayDriver::new(&journal).run(rep.as_mut());
            assert_eq!(reached, end, "{kind} at {cores} cores: replay end");
            assert_eq!(
                fingerprint(rep.as_ref(), cores),
                fingerprint(rec.as_ref(), cores),
                "{kind} at {cores} cores: replayed state"
            );
            assert_eq!(
                rep.machine().mem.as_bytes(),
                rec.machine().mem.as_bytes(),
                "{kind} at {cores} cores: RAM image"
            );
        }
    }
}

// ------------------------------------------------------------------------
// IPI semantics: simultaneously pending lines drain lowest-first, and the
// delivered vectors are identical on raw hardware and under both monitors.

#[test]
fn ipi_delivery_drains_lowest_line_first_on_every_platform() {
    let program = apps::smp_ping_guest();
    for kind in PLATFORMS {
        let mut p = boot(kind, &program, 2, 5_000);
        let mut budget = 40;
        while word(p.as_ref(), smp_layout::PING_COUNT) < 3 && budget > 0 {
            p.run_for(100_000);
            budget -= 1;
        }
        assert_eq!(
            word(p.as_ref(), smp_layout::PING_COUNT),
            3,
            "{kind}: all three IPIs delivered"
        );
        // Lines 3, 1, 2 were sent back-to-back; they must deliver in line
        // order as vectors VECTOR_BASE+1, +2, +3.
        let log: Vec<u32> = (0..3)
            .map(|i| word(p.as_ref(), smp_layout::PING_LOG + 4 * i))
            .collect();
        let base = smp::VECTOR_BASE as u32;
        assert_eq!(log, vec![base + 1, base + 2, base + 3], "{kind}: order");
    }
}

// ------------------------------------------------------------------------
// Time travel over multi-core state: `seek` rewinds every core and the
// shared RAM to their exact earlier values.

#[test]
fn seek_rewinds_multicore_state_exactly() {
    let program = apps::racy_counter_guest();
    let machine = smp_machine(&program, 2, 5_000);
    let entry = program.symbols.get("start").unwrap();
    let mut platform = LvmmPlatform::new(machine, entry);
    platform.enable_flight_recorder(50_000);
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.link_mut().platform.run_for(300_000);
    dbg.halt().unwrap();
    let early_cycle = dbg.link_ref().platform.machine().now();
    let early_counter = word(&dbg.link_ref().platform, smp_layout::COUNTER);
    let early_cores: Vec<(u32, u64)> = (0..2)
        .map(|i| {
            let c = dbg.link_ref().platform.machine().core(i);
            (c.pc(), c.instret())
        })
        .collect();
    assert!(early_counter > 0, "counter is running");
    assert!(early_cores[1].1 > 0, "core 1 started and ran");

    dbg.resume().unwrap();
    dbg.link_mut().platform.run_for(500_000);
    dbg.halt().unwrap();
    assert!(word(&dbg.link_ref().platform, smp_layout::COUNTER) > early_counter);

    let stop = dbg.seek(early_cycle).expect("seek back");
    match stop {
        StopReason::TimeTravel { cycle, .. } => assert_eq!(cycle, early_cycle),
        other => panic!("expected time-travel stop, got {other:?}"),
    }
    assert_eq!(
        word(&dbg.link_ref().platform, smp_layout::COUNTER),
        early_counter,
        "shared counter rewound"
    );
    let rewound: Vec<(u32, u64)> = (0..2)
        .map(|i| {
            let c = dbg.link_ref().platform.machine().core(i);
            (c.pc(), c.instret())
        })
        .collect();
    assert_eq!(rewound, early_cores, "per-core state rewound");
}

// ------------------------------------------------------------------------
// The cross-core race: lost updates on the shared counter are caught by
// seeking the flight recording to the first cycle the per-core-tally
// invariant breaks.

#[test]
fn cross_core_race_is_caught_at_first_divergent_cycle() {
    let program = apps::racy_counter_guest();
    let mut machine = smp_machine(&program, 2, 50_000);
    // Guarantee at least one lost update even if no quantum switch happens
    // to split a read-modify-write in this window.
    machine.enable_fault_injection(
        FaultPlan::new(42)
            .only(FaultKind::RacyIncrement)
            .race(smp_layout::COUNTER)
            .period(150_000),
    );
    let entry = program.symbols.get("start").unwrap();
    let mut platform = LvmmPlatform::new(machine, entry);
    platform.enable_flight_recorder(100_000);
    let mut dbg = Debugger::new(UartLink::new(platform));

    dbg.link_mut().platform.run_for(1_200_000);
    dbg.halt().unwrap();
    let faults = dbg.link_ref().platform.machine().fault_stats().unwrap();
    assert!(
        faults.injected_for(FaultKind::RacyIncrement) > 0,
        "campaign injected at least one lost update"
    );

    let expr = format!(
        "[{c:#x}] < [{t0:#x}] + [{t1:#x}]",
        c = smp_layout::COUNTER,
        t0 = smp_layout::TALLY,
        t1 = smp_layout::TALLY + 4
    );
    let hit = dbg.query_first(&expr).expect("query runs");
    let (cycle, stop) = hit.expect("the lost update is on the recording");
    match stop {
        StopReason::TimeTravel { cycle: at, .. } => assert_eq!(at, cycle),
        other => panic!("expected time-travel stop, got {other:?}"),
    }
    // Ground truth: single-step an identical fresh platform and find the
    // first boundary where the invariant ever breaks. The query must land
    // there — not merely on some later checkpoint that happens to satisfy
    // the predicate.
    let mut truth_machine = smp_machine(&program, 2, 50_000);
    truth_machine.enable_fault_injection(
        FaultPlan::new(42)
            .only(FaultKind::RacyIncrement)
            .race(smp_layout::COUNTER)
            .period(150_000),
    );
    let mut truth = LvmmPlatform::new(truth_machine, entry);
    truth.enable_flight_recorder(100_000);
    let expected = loop {
        let counter = truth.machine().mem.word(smp_layout::COUNTER);
        let sum = truth.machine().mem.word(smp_layout::TALLY)
            + truth.machine().mem.word(smp_layout::TALLY + 4);
        if counter < sum {
            break truth.machine().now();
        }
        assert!(
            truth.machine().now() < 1_200_000,
            "ground truth: invariant breaks inside the recorded window"
        );
        truth.run_for(1);
    };
    assert_eq!(cycle, expected, "query lands on the first divergent cycle");
    // Parked at the divergence: the invariant is visibly broken there.
    let counter = word(&dbg.link_ref().platform, smp_layout::COUNTER);
    let sum = word(&dbg.link_ref().platform, smp_layout::TALLY)
        + word(&dbg.link_ref().platform, smp_layout::TALLY + 4);
    assert!(
        counter < sum,
        "at cycle {cycle}: counter {counter} fell behind the {sum} increments performed"
    );
}

// ------------------------------------------------------------------------
// Single-core stays bit-identical: a 1-core machine built through the SMP
// config produces the same journal as the classic default-config machine.

#[test]
fn single_core_smp_config_matches_classic_machine() {
    use lwvmm::guest::{kernel::layout, Workload};
    let run = |cfg: MachineConfig| {
        let mut machine = Machine::new(cfg);
        let program = Workload::new(100).build(&machine).unwrap();
        machine.load_program(&program);
        machine.obs.enable_journal("lvmm");
        let mut p = LvmmPlatform::new(machine, layout::ENTRY);
        p.run_for(2_000_000);
        let journal = p.machine().obs.journal().cloned().unwrap().save();
        (fingerprint(&p, 1), journal)
    };
    let classic = run(MachineConfig::default());
    // An exotic quantum must be invisible on one core (it is ignored).
    let smp_built = run(MachineConfig {
        num_cores: 1,
        sched_quantum: 777,
        ..MachineConfig::default()
    });
    assert_eq!(classic, smp_built);
}

// ------------------------------------------------------------------------
// Scheduler-interleaving determinism, property-style: random quantum and
// core count always give byte-identical journals across two fresh runs.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scheduler_interleaving_is_deterministic(
        params in (500u64..20_000, 1usize..5, 0u8..2)
    ) {
        let (quantum, cores, racy) = params;
        let program = if racy == 0 {
            apps::smp_ping_guest()
        } else {
            apps::racy_counter_guest()
        };
        let run = || {
            let mut p = boot("lvmm", &program, cores, quantum);
            p.machine_mut().obs.enable_journal("lvmm");
            p.run_for(300_000);
            let journal = p.machine().obs.journal().cloned().unwrap().save();
            (fingerprint(p.as_ref(), cores), journal)
        };
        prop_assert_eq!(run(), run());
    }
}
