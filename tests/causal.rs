//! Causal-tracing end-to-end tests: flow events and latency histograms are
//! a pure function of the simulated run — byte-identical between record and
//! replay on every platform at every core count — and the guest-visible
//! machine is bit-identical whether or not a tracker is watching.

use lwvmm::guest::{apps, kernel::layout, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::{ChromeTrace, FlowClass, Journal};

const KINDS: [&str; 3] = ["real-hw", "lvmm", "hosted"];

/// A `kind` platform running the single-core streaming workload (1 core)
/// or the cross-core tracepoint demo guest (2+ cores), with causal-flow
/// tracking optionally enabled.
fn platform(kind: &str, cores: usize, causal: bool) -> Box<dyn Platform> {
    let mut machine = Machine::new(MachineConfig {
        num_cores: cores,
        ..MachineConfig::default()
    });
    let (program, entry) = if cores > 1 {
        let p = apps::smp_trace_guest();
        let e = p.symbols.get("start").unwrap();
        (p, e)
    } else {
        (Workload::new(100).build(&machine).unwrap(), layout::ENTRY)
    };
    machine.load_program(&program);
    if causal {
        machine.obs.enable_tracing();
        machine.obs.enable_causal();
    }
    match kind {
        "real-hw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, entry)),
        "hosted" => Box::new(lwvmm::hosted::HostedPlatform::new(machine, entry)),
        other => panic!("unknown platform {other}"),
    }
}

/// Everything causal a run produced, as comparable bytes: the flow list,
/// the per-class histogram summaries, and the full Chrome trace.
fn causal_bytes(p: &dyn Platform) -> (String, String, String) {
    let c = p.machine().obs.causal().expect("causal enabled");
    let mut chrome = ChromeTrace::new();
    chrome.add_platform(1, "run", &p.machine().obs);
    (
        format!("{:?}", c.flows()),
        c.summary_lines().join("\n"),
        chrome.finish(),
    )
}

/// The tentpole acceptance check: on all three platforms, at one and two
/// cores, replaying a recorded journal on a fresh causal-enabled platform
/// reproduces byte-identical flows, histograms and Chrome trace — and the
/// same guest RAM.
#[test]
fn flows_replay_byte_identically_on_all_platforms_and_core_counts() {
    for kind in KINDS {
        for cores in [1usize, 2] {
            let mut rec = platform(kind, cores, true);
            rec.machine_mut().obs.enable_journal(kind);
            let per_ms = rec.machine().config().clock_hz / 1_000;
            rec.run_for(10 * per_ms);
            let end = rec.machine().now();
            let mut journal: Journal = rec.machine().obs.journal().cloned().unwrap();
            journal.seal(end);
            let (flows_a, hists_a, chrome_a) = causal_bytes(rec.as_ref());
            assert!(
                !rec.machine().obs.causal().unwrap().flows().is_empty(),
                "{kind}/{cores}: the run produced flows"
            );

            let mut rep = platform(kind, cores, true);
            let reached = ReplayDriver::new(&journal).run(rep.as_mut());
            assert_eq!(reached, end, "{kind}/{cores}: replay reaches the end");
            let (flows_b, hists_b, chrome_b) = causal_bytes(rep.as_ref());
            assert_eq!(flows_a, flows_b, "{kind}/{cores}: flow bytes");
            assert_eq!(hists_a, hists_b, "{kind}/{cores}: histogram bytes");
            assert_eq!(chrome_a, chrome_b, "{kind}/{cores}: chrome trace bytes");
            assert_eq!(
                rec.machine().mem.as_bytes(),
                rep.machine().mem.as_bytes(),
                "{kind}/{cores}: guest RAM"
            );
        }
    }
}

/// Causal tracking is observation-only: with the tracker on or off, the
/// guest retires the same instructions into the same RAM image, and the
/// tracepoint-emitting guest makes the same progress. (The journal gains
/// ISR records when the tracker is on — that is recorded *output*, not a
/// perturbation; this test pins the machine itself.)
#[test]
fn causal_tracking_is_simulation_invisible() {
    for kind in KINDS {
        for cores in [1usize, 2] {
            let run = |causal: bool| {
                let mut p = platform(kind, cores, causal);
                let per_ms = p.machine().config().clock_hz / 1_000;
                p.run_for(10 * per_ms);
                (
                    p.machine().now(),
                    p.machine().total_instret(),
                    p.machine().mem.as_bytes().to_vec(),
                )
            };
            let (now_off, instret_off, ram_off) = run(false);
            let (now_on, instret_on, ram_on) = run(true);
            assert_eq!(now_off, now_on, "{kind}/{cores}: clock");
            assert_eq!(instret_off, instret_on, "{kind}/{cores}: instructions");
            assert_eq!(ram_off, ram_on, "{kind}/{cores}: guest RAM");
        }
    }
}

/// Guest tracepoints are plain journaled MMIO: a causal-off recording of
/// the tracepoint guest replays to an identical RAM image on a causal-off
/// platform, and its journal carries the trace stream for offline queries.
#[test]
fn tracepoints_record_and_replay_without_a_tracker() {
    let mut rec = platform("lvmm", 2, false);
    rec.machine_mut().obs.enable_journal("lvmm");
    let per_ms = rec.machine().config().clock_hz / 1_000;
    rec.run_for(10 * per_ms);
    let end = rec.machine().now();
    let mut journal = rec.machine().obs.journal().cloned().unwrap();
    journal.seal(end);
    let text = journal.save();
    assert!(
        text.contains(" trace b ") && text.contains(" trace e "),
        "guest tracepoints are journaled"
    );
    let acks = rec.machine().mem.word(apps::smp_layout::TRACE_ACK);
    assert!(acks > 0, "the demo guest made progress");

    let mut rep = platform("lvmm", 2, false);
    let reached = ReplayDriver::new(&journal).run(rep.as_mut());
    assert_eq!(reached, end);
    assert_eq!(rep.machine().mem.as_bytes(), rec.machine().mem.as_bytes());
}

/// Every flow a real run emits is well-formed, and the tracker's own
/// accounting reconciles: completions = kept flows + dropped flows.
#[test]
fn real_runs_emit_well_formed_flows() {
    for kind in KINDS {
        let mut p = platform(kind, 2, true);
        let per_ms = p.machine().config().clock_hz / 1_000;
        p.run_for(10 * per_ms);
        let c = p.machine().obs.causal().unwrap();
        let flows = c.flows();
        assert!(!flows.is_empty(), "{kind}: flows completed");
        for f in flows {
            assert!(f.begin <= f.end, "{kind}: start before end: {f:?}");
        }
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), flows.len(), "{kind}: flow ids unique");
        assert_eq!(
            c.completed(),
            flows.len() as u64 + c.dropped_flows(),
            "{kind}: accounting reconciles"
        );
        // The demo guest's spans all cross from core 0 to core 1.
        assert!(
            flows
                .iter()
                .filter(|f| f.class == FlowClass::Span)
                .all(|f| (f.begin_core, f.end_core) == (0, 1)),
            "{kind}: spans cross cores"
        );
        assert!(c.hist(FlowClass::Ipi).count() > 0, "{kind}: IPI flows");
    }
}

/// `qFlow` over the live wire reports exactly what the tracker holds, and
/// the wire's fixed class-vector width tracks the enum.
#[test]
fn qflow_samples_the_live_tracker() {
    assert_eq!(lwvmm::debugger::FLOW_CLASSES, FlowClass::COUNT);
    assert_eq!(FlowClass::ALL.len(), FlowClass::COUNT);
    // Canonical order is schema on every surface (wire vector, JSON,
    // prometheus `class` label) — pin its head and tail.
    assert_eq!(FlowClass::ALL[0].label(), "irq-dispatch");
    assert_eq!(FlowClass::ALL[FlowClass::COUNT - 1].label(), "span");

    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    machine.obs.enable_tracing();
    machine.obs.enable_causal();
    let vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let mut dbg = lwvmm::debugger::Debugger::new(UartLink::new(vmm));
    let per_ms = dbg.link_ref().platform.machine().config().clock_hz / 1_000;
    dbg.link_mut().platform.run_for(10 * per_ms);

    // Servicing the wire keeps the simulated clock ticking, so park the
    // guest first: no guest progress means no new flow completions between
    // the sample and the direct tracker read below.
    dbg.halt().expect("halt");
    let s = dbg.query_flow().expect("qFlow answers live");
    let c = dbg.link_ref().platform.machine().obs.causal().unwrap();
    assert_eq!(s.completed, c.completed());
    assert_eq!(s.dropped, c.dropped_flows());
    assert_eq!(s.orphan_ends, c.orphan_ends());
    assert_eq!(s.instants, c.instants());
    assert!(s.completed > 0, "the streaming run completed flows");
    for (i, &(n, p50, p99, max)) in s.classes.iter().enumerate() {
        let h = c.hist(FlowClass::ALL[i]);
        assert_eq!((n, p50, p99, max), (h.count(), h.p50(), h.p99(), h.max()));
    }
}

/// Without a tracker the stub answers `qFlow` with the dedicated error
/// code instead of wedging the session.
#[test]
fn qflow_without_tracker_is_rejected() {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    let vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let mut dbg = lwvmm::debugger::Debugger::new(UartLink::new(vmm));
    dbg.link_mut().platform.run_for(50_000);
    // err::CAUSAL = 12.
    assert_eq!(
        dbg.query_flow().unwrap_err(),
        lwvmm::debugger::DbgError::Target(12)
    );
}
