//! End-to-end tests for the trace-query engine: conditional breakpoints,
//! kind-aware watchpoints, logpoints and the `Qq` timeline search — with
//! the record/replay and non-perturbation guarantees the design demands.

use lwvmm::debugger::{Debugger, StopReason, WatchKind};
use lwvmm::guest::{apps, kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::{audit, ChromeTrace, Journal};

/// The streaming workload booted on one of the three platforms.
fn streaming_platform(kind: &str) -> Box<dyn Platform> {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    match kind {
        "raw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        "hosted" => Box::new(HostedPlatform::new(machine, layout::ENTRY)),
        other => panic!("unknown platform {other}"),
    }
}

fn chrome(platform: &dyn Platform) -> String {
    let mut t = ChromeTrace::new();
    t.add_platform(1, platform.name(), &platform.machine().obs);
    t.finish()
}

fn sealed_journal(platform: &dyn Platform) -> Journal {
    let mut journal = platform.machine().obs.journal().cloned().unwrap();
    journal.seal(platform.machine().now());
    journal
}

/// Logpoints are part of recorded machine state: a run with an armed
/// (conditional) logpoint journals its hit stream, and replaying the
/// journal on a fresh platform with the same logpoint armed reproduces the
/// trace — including every logpoint event — byte-identically. Holds on all
/// three platforms.
#[test]
fn logpoint_sessions_replay_byte_identically() {
    for kind in ["raw", "lvmm", "hosted"] {
        let arm = |p: &mut dyn Platform| {
            // Fire in the timer ISR once at least one tick was handled.
            p.machine_mut().add_logpoint(
                0x15ac,
                "tick",
                Some(lwvmm::query::Expr::parse("[0x90c] > 0").unwrap()),
            );
        };
        let mut rec = streaming_platform(kind);
        rec.machine_mut().obs.enable_tracing();
        rec.machine_mut().obs.enable_journal(kind);
        arm(rec.as_mut());
        let per_ms = rec.machine().config().clock_hz / 1_000;
        rec.run_for(10 * per_ms);
        let journal = sealed_journal(rec.as_ref());
        let hits = journal
            .events
            .iter()
            .filter(|e| matches!(e.ev, lwvmm::obs::JournalEvent::Log { .. }))
            .count();
        assert!(hits > 0, "{kind}: logpoint never fired");

        let mut rep = streaming_platform(kind);
        rep.machine_mut().obs.enable_tracing();
        rep.machine_mut().obs.enable_journal(kind);
        arm(rep.as_mut());
        let reached = ReplayDriver::new(&journal).run(rep.as_mut());

        assert_eq!(reached, journal.end, "{kind}: replay reaches the end");
        assert_eq!(
            chrome(rep.as_ref()),
            chrome(rec.as_ref()),
            "{kind}: trace bytes (logpoint hits included)"
        );
        let replayed = sealed_journal(rep.as_ref());
        assert!(
            audit(&journal, &replayed).iter().all(|s| s.clean()),
            "{kind}: replayed journal streams diverge"
        );
        assert_eq!(
            rep.machine().mem.as_bytes(),
            rec.machine().mem.as_bytes(),
            "{kind}: guest RAM image"
        );
    }
}

/// Arming a logpoint disables instruction batching, which must be
/// simulation-invisible: with and without a (never-firing) logpoint the
/// run reaches the identical cycle with identical guest statistics, on all
/// three platforms. This is the mechanism that keeps logpoints out of
/// `BENCH_fig3_1.json`'s cycle counts.
#[test]
fn logpoints_do_not_perturb_cycle_counts() {
    for kind in ["raw", "lvmm", "hosted"] {
        let run = |with_logpoint: bool| {
            let mut p = streaming_platform(kind);
            if with_logpoint {
                p.machine_mut().add_logpoint(
                    0x15ac,
                    "tick",
                    Some(lwvmm::query::Expr::parse("[0x90c] > 100000").unwrap()),
                );
            }
            let per_ms = p.machine().config().clock_hz / 1_000;
            p.run_for(15 * per_ms);
            (
                p.machine().now(),
                p.machine().cpu.instret(),
                GuestStats::read(p.machine()).unwrap(),
            )
        };
        let (now_a, instret_a, stats_a) = run(false);
        let (now_b, instret_b, stats_b) = run(true);
        assert_eq!(now_a, now_b, "{kind}: cycle count perturbed");
        assert_eq!(instret_a, instret_b, "{kind}: instruction count perturbed");
        assert_eq!(stats_a, stats_b, "{kind}: guest stats perturbed");
    }
}

/// A full wire session — read watchpoint, conditional breakpoint, memory
/// inspection — is itself journaled (every host UART byte is an input), so
/// replaying the journal on a fresh monitor reproduces the identical trace
/// without a debugger attached.
#[test]
fn watchpoint_and_conditional_breakpoint_session_replays() {
    let record = || {
        let mut machine = Machine::new(MachineConfig::default());
        let program = Workload::new(100).build(&machine).unwrap();
        machine.load_program(&program);
        let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
        vmm.machine_mut().obs.enable_tracing();
        vmm.machine_mut().obs.enable_journal("lvmm");
        vmm
    };

    let mut dbg = Debugger::new(UartLink {
        platform: record(),
        slice: 2_000,
    });
    // Read watchpoint on the tick counter: the timer ISR's load stops the
    // guest even though nothing wrote the watched word.
    dbg.halt().unwrap();
    dbg.set_watchpoint_kind(0x90c, 4, WatchKind::Read).unwrap();
    let stop = dbg.continue_until_stop().unwrap();
    assert!(
        matches!(stop, StopReason::Watchpoint { addr: 0x90c, .. }),
        "expected read-watchpoint stop, got {stop:?}"
    );
    dbg.clear_watchpoint(0x90c).unwrap();

    // Conditional breakpoint in build_frame: only stops once three frames
    // are out; the monitor silently steps over earlier hits.
    dbg.set_breakpoint(0x123c).unwrap();
    dbg.set_break_condition(0x123c, "[0x908] >= 3").unwrap();
    let stop = dbg.continue_until_stop().unwrap();
    assert!(
        matches!(stop, StopReason::Breakpoint { pc: 0x123c }),
        "expected conditional breakpoint stop, got {stop:?}"
    );
    let frames = dbg.read_memory(0x908, 4).unwrap();
    assert!(u32::from_le_bytes(frames.try_into().unwrap()) >= 3);
    dbg.clear_breakpoint(0x123c).unwrap();
    dbg.resume().unwrap();

    let link = dbg.into_link();
    let mut rec = link.platform;
    let per_ms = rec.machine().config().clock_hz / 1_000;
    rec.run_for(5 * per_ms);
    let journal = sealed_journal(&rec);

    // Replay: the journal carries the whole wire dialogue as UART inputs.
    let mut rep = record();
    let reached = ReplayDriver::new(&journal).run(&mut rep);
    assert_eq!(reached, journal.end, "replay reaches the end");
    assert_eq!(
        chrome(&rep),
        chrome(&rec),
        "session trace bytes (watchpoint + conditional breakpoint)"
    );
    assert_eq!(
        rep.machine().mem.as_bytes(),
        rec.machine().mem.as_bytes(),
        "guest RAM image"
    );
}

/// The `Qq` timeline search over the wire: on the counter guest, the first
/// cycle at which `counter >= 5` is found by checkpoint scan + replay, the
/// guest parks there, and the watched word reads exactly 5. A second,
/// independent session lands on the identical cycle.
#[test]
fn query_first_finds_and_seeks_first_satisfying_cycle() {
    let session = || {
        let program = apps::counter_guest();
        let counter = program.symbols.get("counter").unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        machine.load_program(&program);
        let mut vmm = LvmmPlatform::new(machine, program.base());
        vmm.enable_flight_recorder(10_000);
        vmm.run_for(200_000);
        let mut dbg = Debugger::new(UartLink {
            platform: vmm,
            slice: 2_000,
        });
        dbg.halt().unwrap();
        let expr = format!("[0x{counter:x}] >= 5");
        let (cycle, stop) = dbg
            .query_first(&expr)
            .expect("query runs")
            .expect("counter reaches 5 well before the halt");
        assert!(
            matches!(stop, StopReason::TimeTravel { cycle: c, .. } if c == cycle),
            "parked at the satisfying cycle, got {stop:?}"
        );
        let word = dbg.read_memory(counter, 4).unwrap();
        assert_eq!(
            u32::from_le_bytes(word.try_into().unwrap()),
            5,
            "at the *first* satisfying cycle the counter is exactly 5"
        );
        cycle
    };
    assert_eq!(session(), session(), "query result is deterministic");
}

/// A query whose predicate never holds leaves the target parked (new-branch
/// semantics) and reports a miss rather than an error.
#[test]
fn query_first_miss_reports_not_found() {
    let program = apps::counter_guest();
    let mut machine = Machine::new(MachineConfig::default());
    machine.load_program(&program);
    let mut vmm = LvmmPlatform::new(machine, program.base());
    vmm.enable_flight_recorder(10_000);
    vmm.run_for(100_000);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    dbg.halt().unwrap();
    assert_eq!(dbg.query_first("pc == 0xdead0000").unwrap(), None);
    // Consume the park notification; the target is still debuggable.
    let stop = dbg.wait_stop().unwrap();
    assert!(matches!(stop, StopReason::TimeTravel { .. }), "{stop:?}");
    dbg.read_registers().unwrap();
}
