//! Debug-farm end-to-end tests: N guests in one process, concurrent debug
//! sessions over TCP, fleet aggregation, fault isolation — and the
//! non-negotiable determinism claim, proven differentially: a farm-served
//! guest's sealed journal is byte-identical to the same guest run
//! standalone.

use lwvmm::debugger::Debugger;
use lwvmm::farm::{
    control_request, Farm, FarmConfig, FarmPlatform, GuestHealth, GuestSpec, TcpLink,
};
use lwvmm::guest::{kernel::layout, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::LvmmPlatform;
use std::time::Duration;

/// A short horizon keeps debug-build runtime in check: ten simulated
/// milliseconds at the default 150 MHz clock.
const HORIZON: u64 = 1_500_000;

fn farm_config(guests: Vec<GuestSpec>, horizon: Option<u64>) -> FarmConfig {
    FarmConfig {
        guests,
        workers: 2,
        horizon,
        ..FarmConfig::default()
    }
}

/// The exact standalone recipe a farm lvmm guest must match: same machine
/// config, same workload, same flight-recorder cadence, sealed at wherever
/// `run_for(horizon)` actually stopped.
fn standalone_lvmm_journal(rate: u64, horizon: u64, every: u64) -> String {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate).build(&machine).unwrap();
    machine.load_program(&program);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    vmm.enable_flight_recorder(every);
    vmm.run_for(horizon);
    let now = vmm.machine().now();
    let obs = &mut vmm.machine_mut().obs;
    obs.journal_mut().unwrap().seal(now);
    obs.journal().unwrap().save()
}

/// Every numeric value for `key` in a (flat, deterministic) JSON line, in
/// order of appearance. Enough of a parser for the farm's control replies.
fn all_u64s(json: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        let tail = &rest[i + pat.len()..];
        let end = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        out.push(tail[..end].parse().expect("numeric value"));
        rest = &tail[end..];
    }
    out
}

/// The acceptance test for the determinism claim: the journal a farm guest
/// seals at the horizon is byte-for-byte the journal a standalone run of
/// the same guest produces — even with a debug client connected (a silent
/// connection injects no bytes, so the simulation never sees it), and
/// identically across every guest of the fleet.
#[test]
fn farm_journal_is_byte_identical_to_standalone() {
    let guests = vec![GuestSpec::default(); 3];
    let farm = Farm::launch(farm_config(guests, Some(HORIZON))).expect("launch");

    // Connect to guest 0 and say nothing. Determinism must survive the
    // socket being open.
    let silent = TcpLink::connect(&format!("127.0.0.1:{}", farm.ports()[0])).expect("connect");
    assert!(farm.wait_settled(Duration::from_secs(120)), "fleet settles");
    drop(silent);

    let expected = standalone_lvmm_journal(100, HORIZON, FarmConfig::default().record_every);
    let reports = farm.shutdown();
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert_eq!(r.health, GuestHealth::Done, "guest {} settled", r.id);
        let journal = r.journal.as_ref().expect("recorded guest has a journal");
        assert_eq!(
            journal, &expected,
            "guest {}: farm journal differs from standalone",
            r.id
        );
    }
}

/// Two concurrent debug sessions on different guests of the same farm,
/// commands interleaved: each stub answers independently, and the fleet
/// status counts both sessions.
#[test]
fn concurrent_sessions_interleave_across_guests() {
    let guests = vec![GuestSpec::default(); 3];
    let farm = Farm::launch(farm_config(guests, None)).expect("launch");

    let link =
        |id: usize| TcpLink::connect(&format!("127.0.0.1:{}", farm.ports()[id])).expect("connect");
    let mut a = Debugger::new(link(0));
    let mut b = Debugger::new(link(2));

    // Interleave: halt both, inspect both, breakpoint both, resume both.
    a.halt().expect("halt guest 0");
    b.halt().expect("halt guest 2");
    let ra = a.read_registers().expect("regs guest 0");
    let rb = b.read_registers().expect("regs guest 2");
    assert_ne!(ra.pc, 0, "guest 0 is executing kernel code");
    assert_ne!(rb.pc, 0, "guest 2 is executing kernel code");
    a.set_breakpoint(layout::ENTRY).expect("break guest 0");
    b.set_breakpoint(layout::ENTRY).expect("break guest 2");
    let ma = a.read_memory(layout::ENTRY, 8).expect("mem guest 0");
    assert_eq!(ma.len(), 8);
    a.clear_breakpoint(layout::ENTRY).expect("clear guest 0");
    b.clear_breakpoint(layout::ENTRY).expect("clear guest 2");
    a.resume().expect("resume guest 0");
    b.resume().expect("resume guest 2");

    let status = control_request(farm.control_port(), "status").expect("status");
    let sessions = all_u64s(&status, "sessions");
    assert_eq!(
        sessions,
        vec![1, 0, 1],
        "one session each on guests 0 and 2"
    );
    farm.shutdown();
}

/// Fleet aggregation: the `qstats` totals object equals the field-wise sum
/// of the per-guest objects — re-derived here externally, the same check
/// the farm-smoke CI job performs.
#[test]
fn control_stats_totals_equal_sum_of_per_guest() {
    let guests = vec![GuestSpec::default(); 3];
    let farm = Farm::launch(farm_config(guests, Some(HORIZON))).expect("launch");
    assert!(farm.wait_settled(Duration::from_secs(120)), "fleet settles");

    let stats = control_request(farm.control_port(), "stats").expect("stats");
    for key in [
        "instret",
        "guest_cycles",
        "monitor_cycles",
        "host_model_cycles",
        "idle_cycles",
        "frames",
        "stream_bytes",
        "journal_payload_bytes",
        "sessions",
    ] {
        let vals = all_u64s(&stats, key);
        assert_eq!(vals.len(), 4, "{key}: totals plus three guests");
        assert_eq!(
            vals[0],
            vals[1..].iter().sum::<u64>(),
            "{key}: total equals sum of per-guest"
        );
    }
    // Identical guests simulate identically — instret agrees across the
    // fleet (determinism seen through the aggregation endpoint).
    let instret = all_u64s(&stats, "instret");
    assert_eq!(instret[1], instret[2]);
    assert_eq!(instret[2], instret[3]);

    // Per-guest drill-down returns exactly that guest, and its totals are
    // its own values.
    let one = control_request(farm.control_port(), "stats 1").expect("stats 1");
    let vals = all_u64s(&one, "instret");
    assert_eq!(vals.len(), 2, "totals plus exactly one guest");
    assert_eq!(vals[0], vals[1]);
    farm.shutdown();
}

/// Fault isolation: a guest running a fault campaign shares the farm with
/// healthy neighbors. The neighbors must reach the horizon and keep
/// answering their debug stubs no matter what the campaign does to guest 0.
#[test]
fn fault_campaign_guest_does_not_stall_neighbors() {
    let campaign = GuestSpec {
        fault: Some(("all".into(), 42)),
        ..GuestSpec::default()
    };
    let guests = vec![campaign, GuestSpec::default(), GuestSpec::default()];
    let farm = Farm::launch(farm_config(guests, Some(HORIZON))).expect("launch");
    assert!(
        farm.wait_settled(Duration::from_secs(120)),
        "a wedged campaign guest must not keep the fleet from settling"
    );

    // A neighbor's stub still answers after the fleet settled.
    let link = TcpLink::connect(&format!("127.0.0.1:{}", farm.ports()[1])).expect("connect");
    let mut dbg = Debugger::new(link);
    dbg.halt().expect("halt neighbor");
    dbg.read_registers().expect("regs neighbor");
    dbg.resume().expect("resume neighbor");

    let reports = farm.shutdown();
    for r in &reports[1..] {
        assert_eq!(r.health, GuestHealth::Done, "neighbor {} settled", r.id);
        assert!(r.now >= HORIZON, "neighbor {} reached the horizon", r.id);
    }
    // The campaign guest ends wherever the faults left it — done if it
    // survived, parked if it wedged — but never still running.
    assert_ne!(reports[0].health, GuestHealth::Running);
}

/// Operator eviction: `evict` removes one guest from service while its
/// shard keeps simulating and serving the rest.
#[test]
fn evicted_guest_leaves_neighbors_serving() {
    let guests = vec![GuestSpec::default(), GuestSpec::default()];
    let mut cfg = farm_config(guests, None);
    cfg.workers = 1; // both guests on one shard: eviction must free it, not wedge it
    let farm = Farm::launch(cfg).expect("launch");

    let reply = control_request(farm.control_port(), "evict 0").expect("evict");
    assert_eq!(reply, r#"{"evicted":0}"#);

    // The survivor keeps advancing while the evicted guest's clock stands
    // still.
    let status = control_request(farm.control_port(), "status").expect("status");
    let before = all_u64s(&status, "now");
    std::thread::sleep(Duration::from_millis(300));
    let status = control_request(farm.control_port(), "status").expect("status");
    let after = all_u64s(&status, "now");
    assert_eq!(after[0], before[0], "evicted guest stopped simulating");
    assert!(after[1] > before[1], "neighbor still simulating");
    assert!(status.contains(r#""health":"evicted""#));

    // And the survivor's stub still answers on the shared shard.
    let link = TcpLink::connect(&format!("127.0.0.1:{}", farm.ports()[1])).expect("connect");
    let mut dbg = Debugger::new(link);
    dbg.halt().expect("halt survivor");
    dbg.resume().expect("resume survivor");

    let reports = farm.shutdown();
    assert_eq!(reports[0].health, GuestHealth::Evicted);
    assert_ne!(reports[1].health, GuestHealth::Evicted);
}

/// A mixed fleet — raw hardware, the lightweight monitor, the hosted full
/// monitor — boots, settles, and every recorded guest seals a journal that
/// names its own platform.
#[test]
fn mixed_platform_fleet_settles_and_records() {
    let guests = vec![
        GuestSpec {
            platform: FarmPlatform::Raw,
            ..GuestSpec::default()
        },
        GuestSpec::default(),
        GuestSpec {
            platform: FarmPlatform::Hosted,
            ..GuestSpec::default()
        },
    ];
    let farm = Farm::launch(farm_config(guests, Some(HORIZON))).expect("launch");
    assert!(farm.wait_settled(Duration::from_secs(120)), "fleet settles");
    let reports = farm.shutdown();
    let platforms: Vec<&str> = reports.iter().map(|r| r.platform).collect();
    assert_eq!(platforms, vec!["real-hw", "lvmm", "hosted"]);
    for r in &reports {
        assert_eq!(r.health, GuestHealth::Done, "guest {} settled", r.id);
        let journal = r.journal.as_ref().expect("recorded guest has a journal");
        assert!(
            journal.contains(&format!("platform {}", r.platform)),
            "guest {}: journal names its platform",
            r.id
        );
    }
}

/// Debug sessions outlive the horizon: a `Done` guest's stub (including
/// time travel over its flight recording) keeps answering — that is the
/// whole point of keeping retired guests on their sockets.
#[test]
fn done_guest_still_serves_time_travel() {
    let farm =
        Farm::launch(farm_config(vec![GuestSpec::default()], Some(HORIZON))).expect("launch");
    assert!(farm.wait_settled(Duration::from_secs(120)), "guest settles");

    let link = TcpLink::connect(&format!("127.0.0.1:{}", farm.ports()[0])).expect("connect");
    let mut dbg = Debugger::new(link);
    dbg.halt().expect("halt done guest");
    let stop = dbg.seek(HORIZON / 2).expect("seek into the recording");
    match stop {
        lwvmm::debugger::StopReason::TimeTravel { cycle, .. } => {
            // The replay parks at the first step boundary at or after the
            // requested cycle.
            assert!(
                (HORIZON / 2..HORIZON).contains(&cycle),
                "parked near the target, got cycle {cycle}"
            );
        }
        other => panic!("expected a time-travel stop, got {other:?}"),
    }
    dbg.read_registers().expect("regs at the seek target");
    farm.shutdown();
}
