//! NIC receive-path tests: frames injected from the outside world reach a
//! guest-posted RX ring — directly on raw hardware, via passthrough DMA
//! under the lightweight monitor, and via the host relay under the hosted
//! monitor.

use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{map, Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;

/// A guest that posts one RX buffer, sleeps, and on the RX interrupt copies
/// the first payload byte into `s1` and sets `s2 = 1`.
fn rx_guest() -> hx_asm::Program {
    hx_asm::assemble(&format!(
        "        .org 0x1000
         start:  csrw tvec, h
                 ; one RX descriptor: buffer 0x8000, capacity 2048
                 li   t0, 0x2000
                 li   t1, 0x8000
                 sw   t1, 0(t0)
                 li   t1, 2048
                 sw   t1, 4(t0)
                 li   t0, {nic:#x}
                 li   t1, 0x2000
                 sw   t1, 0x20(t0)      ; RX_BASE
                 li   t1, 4
                 sw   t1, 0x24(t0)      ; RX_LEN
                 li   t1, 1
                 sw   t1, 0x2c(t0)      ; RX_TAIL doorbell
                 csrs status, 1
         idle:   wfi
                 j    idle
         h:      li   t0, 0x8000
                 lbu  s1, 0(t0)         ; first received byte
                 li   t0, {nic:#x}
                 lw   t1, 0x10(t0)
                 sw   t1, 0x14(t0)      ; IACK
                 li   t0, {pic:#x}
                 li   t1, {rx_irq}
                 sw   t1, 0xc(t0)       ; EOI
                 li   s2, 1
         done:   j done
        ",
        nic = map::NIC_BASE,
        pic = map::PIC_BASE,
        rx_irq = map::irq::NIC_RX,
    ))
    .expect("rx guest assembles")
}

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    m.load_program(&rx_guest());
    m
}

#[test]
fn rx_reaches_guest_on_raw_hardware() {
    let mut hw = RawPlatform::new(machine());
    hw.run_for(100_000); // guest posts its ring and sleeps
    hw.machine_mut().nic_inject_rx(vec![0x5a; 96]);
    hw.run_for(200_000);
    assert_eq!(hw.machine().cpu.reg(hx_cpu::Reg::R20), 1, "RX handler ran");
    assert_eq!(hw.machine().cpu.reg(hx_cpu::Reg::R19), 0x5a);
    assert_eq!(hw.machine().nic.counters().rx_frames, 1);
    // The descriptor records the received length.
    assert_eq!(hw.machine().mem.word(0x2000 + 8), 96);
}

#[test]
fn rx_reaches_guest_under_lvmm_passthrough() {
    // Under the lightweight monitor the ring, the DMA and the device are
    // all direct; only the interrupt takes the reflect/inject detour.
    let mut vmm = LvmmPlatform::new(machine(), 0x1000);
    vmm.run_for(400_000);
    let reflects_before = vmm.monitor_stats().exits_irq_reflect;
    vmm.machine_mut().nic_inject_rx(vec![0xc3; 64]);
    vmm.run_for(400_000);
    assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R20), 1, "RX handler ran");
    assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R19), 0xc3);
    assert!(vmm.monitor_stats().exits_irq_reflect > reflects_before);
    assert!(!vmm.guest_stopped());
}

#[test]
fn rx_reaches_guest_under_hosted_relay() {
    let mut vmm = HostedPlatform::new(machine(), 0x1000);
    vmm.run_for(2_000_000); // every ring write is an exit; give it time
    vmm.inject_guest_rx(&[0x7e; 128]);
    vmm.run_for(2_000_000);
    assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R20), 1, "RX handler ran");
    assert_eq!(vmm.machine().cpu.reg(hx_cpu::Reg::R19), 0x7e);
    assert!(vmm.time_stats().host_model > 0, "relay charged host time");
}

#[test]
fn device_registers_reject_subword_access() {
    // PC/AT-style devices are word-registered; a byte store from the guest
    // must surface as a store access fault, identically on raw hardware.
    let src = format!(
        "        .org 0x1000
         start:  csrw tvec, h
                 li   t0, {nic:#x}
                 sb   t0, 0(t0)      ; byte store to a device register
                 li   s2, 1          ; must be skipped
         halt:   j halt
         h:      csrr s1, cause
         spin:   j spin
        ",
        nic = map::NIC_BASE
    );
    let program = hx_asm::assemble(&src).unwrap();
    let mut m = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    m.load_program(&program);
    let mut hw = RawPlatform::new(m);
    hw.run_for(50_000);
    assert_eq!(
        hw.machine().cpu.reg(hx_cpu::Reg::R19),
        hx_cpu::Cause::StoreAccessFault.code()
    );
    assert_eq!(hw.machine().cpu.reg(hx_cpu::Reg::R20), 0);
}
