//! End-to-end invariants of the observability layer (`hx-obs`): traces are
//! a pure function of the run, span accounting reconciles with the flat
//! time stats, and `qStats` samples the monitor live over the debug wire
//! without halting the guest.

use lwvmm::debugger::{encode_packet, DbgError, Debugger, Reply};
use lwvmm::guest::{kernel, kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver, UartLink};
use lwvmm::obs::{ChromeTrace, ExitCause, Profiler, SymbolMap, Track};

fn streaming_machine(rate_mbps: u64, tracing: bool) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate_mbps)
        .build(&machine)
        .expect("kernel assembles");
    machine.load_program(&program);
    if tracing {
        machine.obs.enable_tracing();
    }
    machine
}

fn export(platform: &dyn Platform) -> String {
    let mut t = ChromeTrace::new();
    t.add_platform(1, platform.name(), &platform.machine().obs);
    t.finish()
}

#[test]
fn identical_runs_produce_identical_traces_and_histograms() {
    let run = || {
        let machine = streaming_machine(100, true);
        let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
        let clock = vmm.machine().config().clock_hz;
        vmm.run_for(clock / 25);
        vmm
    };
    let (a, b) = (run(), run());
    let (ja, jb) = (export(&a), export(&b));
    assert!(ja.contains("\"traceEvents\""));
    assert_eq!(ja, jb, "trace bytes must be a pure function of the run");

    for cause in ExitCause::ALL {
        let (ha, hb) = (
            a.machine().obs.exits.get(cause),
            b.machine().obs.exits.get(cause),
        );
        assert_eq!(
            (ha.count(), ha.p50(), ha.p99(), ha.mean()),
            (hb.count(), hb.p50(), hb.p99(), hb.mean()),
            "{} histogram must be deterministic",
            cause.label()
        );
    }
    assert!(
        a.machine().obs.exits.total_count() > 0,
        "streaming run must record exits"
    );
}

#[test]
fn spans_reconcile_with_time_stats_on_all_platforms() {
    let platforms: Vec<Box<dyn Platform>> = vec![
        Box::new(RawPlatform::new(streaming_machine(100, true))),
        Box::new(LvmmPlatform::new(
            streaming_machine(100, true),
            layout::ENTRY,
        )),
        Box::new(HostedPlatform::new(
            streaming_machine(100, true),
            layout::ENTRY,
        )),
    ];
    for mut platform in platforms {
        let clock = platform.machine().config().clock_hz;
        platform.run_for(clock / 50);
        let stats = *platform.time_stats();
        let obs = &platform.machine().obs;
        // Guest + monitor + host-model + idle spans cover the whole run.
        assert_eq!(
            obs.spans.grand_total(),
            stats.total(),
            "{}: span cycles == accounted cycles",
            platform.name()
        );
        for (track, bucket) in [
            (Track::Guest, stats.guest),
            (Track::Monitor, stats.monitor),
            (Track::HostModel, stats.host_model),
            (Track::Idle, stats.idle),
        ] {
            assert_eq!(
                obs.spans.total(track),
                bucket,
                "{}: {} track == flat bucket",
                platform.name(),
                track.label()
            );
        }
    }
}

#[test]
fn qstats_samples_live_without_stopping_the_stream() {
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 10); // reach steady state

    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s1 = dbg.query_stats().expect("first qStats");
    dbg.link_mut().platform.run_for(clock / 50);
    let s2 = dbg.query_stats().expect("second qStats");

    // The guest never stopped, and time kept flowing between samples.
    assert!(!dbg.link_ref().platform.guest_stopped());
    assert!(s2.now > s1.now);
    assert!(s2.guest > s1.guest, "guest kept executing between samples");
    assert_eq!(s1.exits.len(), ExitCause::COUNT);
    // Cycle attribution in the sample is complete and self-consistent.
    assert_eq!(s1.guest + s1.monitor + s1.host + s1.idle, s1.now);
    assert_eq!(s2.guest + s2.monitor + s2.host + s2.idle, s2.now);
    // Exit counters only ever grow.
    for (c1, c2) in s1.exits.iter().zip(&s2.exits) {
        assert!(c2 >= c1);
    }
    // A streaming guest takes privileged and IRQ-virtualization exits.
    let count = |cause: ExitCause| s2.exits[cause.index()];
    assert!(count(ExitCause::Privileged) > 0);
    assert!(count(ExitCause::IrqInject) > 0);

    let platform = dbg.into_link().platform;
    let stats = GuestStats::read(platform.machine()).expect("guest stats");
    assert_eq!(stats.fault_cause, 0);
}

#[test]
fn malformed_qstats_packets_never_kill_the_stub() {
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 10);

    // Near-miss and garbage payloads go straight down the wire.
    for bad in ["qStat", "qStatsX", "q", "S1;g:zz", "qStats,extra"] {
        vmm.machine_mut().uart_input(&encode_packet(bad));
    }
    vmm.run_for(200_000);
    // Discard the stub's error replies to the garbage above.
    let _ = vmm.machine_mut().uart_output();

    // The stub answered every one with a parse error, not a panic, and the
    // guest kept streaming. A well-formed qStats still works afterwards.
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s = dbg
        .query_stats()
        .expect("stub alive after malformed traffic");
    assert!(s.now > 0);
    assert!(!dbg.link_ref().platform.guest_stopped());
}

#[test]
fn ring_overflow_is_counted_and_surfaced_in_the_export() {
    use lwvmm::obs::{Dev, Recorder, TraceRing};
    let mut rec = Recorder::new();
    rec.enable_tracing();
    rec.ring = TraceRing::new(2);
    for i in 0..10 {
        rec.irq(i, Dev::Nic, 5);
    }
    assert_eq!(rec.ring.len(), 2);
    assert_eq!(rec.ring.dropped(), 8);
    assert_eq!(rec.ring.total_offered(), 10);
    let mut t = ChromeTrace::new();
    t.add_platform(1, "tiny", &rec);
    let json = t.finish();
    assert!(json.contains("\"truncated\""));
    assert!(json.contains("\"events_dropped\":8"));
}

/// Streaming machine with tracing *and* the deterministic profiler enabled
/// (kernel function symbols, default 997-cycle sampling interval).
fn profiled_machine(rate_mbps: u64) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate_mbps)
        .build(&machine)
        .expect("kernel assembles");
    machine.load_program(&program);
    machine.obs.enable_tracing();
    machine.obs.enable_profiler(Profiler::new(
        SymbolMap::from_ranges(kernel::profile_symbols(&program)),
        Profiler::DEFAULT_INTERVAL,
    ));
    machine
}

type PlatformCtor = fn() -> Box<dyn Platform>;

fn profiled_platforms() -> Vec<(&'static str, PlatformCtor)> {
    fn raw() -> Box<dyn Platform> {
        Box::new(RawPlatform::new(profiled_machine(100)))
    }
    fn lvmm() -> Box<dyn Platform> {
        Box::new(LvmmPlatform::new(profiled_machine(100), layout::ENTRY))
    }
    fn hosted() -> Box<dyn Platform> {
        Box::new(HostedPlatform::new(profiled_machine(100), layout::ENTRY))
    }
    vec![("raw", raw), ("lvmm", lvmm), ("hosted", hosted)]
}

/// The profiler's cycle total is fed by the same `charge(Guest, ..)` calls
/// as the span track, so the two must agree *exactly* — any drift means a
/// code path charged guest cycles outside `Recorder::charge`.
#[test]
fn profile_cycles_reconcile_exactly_with_guest_track_on_all_platforms() {
    for (name, make) in profiled_platforms() {
        let mut platform = make();
        let clock = platform.machine().config().clock_hz;
        platform.run_for(clock / 50);
        let obs = &platform.machine().obs;
        let prof = obs.prof().expect("profiler enabled");
        assert!(prof.total_cycles() > 0, "{name}: guest cycles attributed");
        assert!(prof.total_samples() > 0, "{name}: sampler fired");
        assert_eq!(
            prof.total_cycles(),
            obs.spans.total(Track::Guest),
            "{name}: profiler cycle total == guest span track, exactly"
        );
        let folded = prof.fold();
        assert!(
            folded.contains("guest;build_frame "),
            "{name}: the hot loop is symbolized:\n{folded}"
        );
    }
}

/// The tentpole acceptance check: sampling rides simulated cycles, so
/// recording a run and replaying its journal on a fresh boot produce
/// byte-identical collapsed-stack output on every platform.
#[test]
fn recorded_and_replayed_profiles_are_byte_identical_on_all_platforms() {
    for (name, make) in profiled_platforms() {
        let mut rec = make();
        rec.machine_mut().obs.enable_journal(name);
        let per_ms = rec.machine().config().clock_hz / 1_000;
        rec.run_for(10 * per_ms);
        let end = rec.machine().now();
        let mut journal = rec.machine().obs.journal().cloned().unwrap();
        journal.seal(end);
        let recorded = rec.machine().obs.prof().unwrap().fold();
        assert!(!recorded.is_empty(), "{name}: profile captured");

        let mut rep = make();
        let reached = ReplayDriver::new(&journal).run(rep.as_mut());
        assert_eq!(reached, end, "{name}: replay reaches the recorded end");
        let replayed = rep.machine().obs.prof().unwrap().fold();
        assert_eq!(
            replayed, recorded,
            "{name}: .folded bytes identical under replay"
        );

        let obs = &rep.machine().obs;
        assert_eq!(
            obs.prof().unwrap().total_cycles(),
            obs.spans.total(Track::Guest),
            "{name}: reconciliation holds on the replayed timeline too"
        );
    }
}

/// `qProf` is to the profiler what `qStats` is to the metrics: answered by
/// the monitor-resident stub without stopping the guest.
#[test]
fn qprof_samples_the_profiler_live_without_stopping_the_stream() {
    let mut vmm = LvmmPlatform::new(profiled_machine(100), layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 10); // reach steady state

    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s1 = dbg.query_prof(5).expect("first qProf");
    dbg.link_mut().platform.run_for(clock / 50);
    let s2 = dbg.query_prof(5).expect("second qProf");

    assert!(!dbg.link_ref().platform.guest_stopped());
    assert_eq!(s1.interval, Profiler::DEFAULT_INTERVAL);
    assert!(s2.now > s1.now);
    assert!(
        s2.total_cycles > s1.total_cycles,
        "guest kept being profiled between samples"
    );
    assert!(!s1.top.is_empty() && s1.top.len() <= 5);
    assert!(
        s1.top.iter().any(|(name, _, _)| name == "build_frame"),
        "hot symbol in the top list: {:?}",
        s1.top
    );
    // Top list is sorted by descending cycle count.
    for pair in s2.top.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
}

/// Without an enabled profiler the stub answers `qProf` with a clean
/// `err::PROFILER` target error instead of stalling the session.
#[test]
fn qprof_without_profiler_is_a_clean_error() {
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 20);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    // err::PROFILER = 7.
    assert_eq!(dbg.query_prof(5).unwrap_err(), DbgError::Target(7));
    // The stub (and the guest) survive to answer a well-formed qStats.
    assert!(dbg.query_stats().expect("stub alive").now > 0);
    assert!(!dbg.link_ref().platform.guest_stopped());
}

#[test]
fn stats_reply_wire_roundtrip() {
    // The exact payload the stub emits parses back to the same sample.
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 20);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s = dbg.query_stats().expect("qStats");
    let reply = Reply::Stats(s.clone());
    assert_eq!(Reply::parse(&reply.format()), Some(reply));
}
