//! End-to-end invariants of the observability layer (`hx-obs`): traces are
//! a pure function of the run, span accounting reconciles with the flat
//! time stats, and `qStats` samples the monitor live over the debug wire
//! without halting the guest.

use lwvmm::debugger::{encode_packet, Debugger, Reply};
use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, UartLink};
use lwvmm::obs::{ChromeTrace, ExitCause, Track};

fn streaming_machine(rate_mbps: u64, tracing: bool) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(rate_mbps)
        .build(&machine)
        .expect("kernel assembles");
    machine.load_program(&program);
    if tracing {
        machine.obs.enable_tracing();
    }
    machine
}

fn export(platform: &dyn Platform) -> String {
    let mut t = ChromeTrace::new();
    t.add_platform(1, platform.name(), &platform.machine().obs);
    t.finish()
}

#[test]
fn identical_runs_produce_identical_traces_and_histograms() {
    let run = || {
        let machine = streaming_machine(100, true);
        let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
        let clock = vmm.machine().config().clock_hz;
        vmm.run_for(clock / 25);
        vmm
    };
    let (a, b) = (run(), run());
    let (ja, jb) = (export(&a), export(&b));
    assert!(ja.contains("\"traceEvents\""));
    assert_eq!(ja, jb, "trace bytes must be a pure function of the run");

    for cause in ExitCause::ALL {
        let (ha, hb) = (
            a.machine().obs.exits.get(cause),
            b.machine().obs.exits.get(cause),
        );
        assert_eq!(
            (ha.count(), ha.p50(), ha.p99(), ha.mean()),
            (hb.count(), hb.p50(), hb.p99(), hb.mean()),
            "{} histogram must be deterministic",
            cause.label()
        );
    }
    assert!(
        a.machine().obs.exits.total_count() > 0,
        "streaming run must record exits"
    );
}

#[test]
fn spans_reconcile_with_time_stats_on_all_platforms() {
    let platforms: Vec<Box<dyn Platform>> = vec![
        Box::new(RawPlatform::new(streaming_machine(100, true))),
        Box::new(LvmmPlatform::new(
            streaming_machine(100, true),
            layout::ENTRY,
        )),
        Box::new(HostedPlatform::new(
            streaming_machine(100, true),
            layout::ENTRY,
        )),
    ];
    for mut platform in platforms {
        let clock = platform.machine().config().clock_hz;
        platform.run_for(clock / 50);
        let stats = *platform.time_stats();
        let obs = &platform.machine().obs;
        // Guest + monitor + host-model + idle spans cover the whole run.
        assert_eq!(
            obs.spans.grand_total(),
            stats.total(),
            "{}: span cycles == accounted cycles",
            platform.name()
        );
        for (track, bucket) in [
            (Track::Guest, stats.guest),
            (Track::Monitor, stats.monitor),
            (Track::HostModel, stats.host_model),
            (Track::Idle, stats.idle),
        ] {
            assert_eq!(
                obs.spans.total(track),
                bucket,
                "{}: {} track == flat bucket",
                platform.name(),
                track.label()
            );
        }
    }
}

#[test]
fn qstats_samples_live_without_stopping_the_stream() {
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 10); // reach steady state

    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s1 = dbg.query_stats().expect("first qStats");
    dbg.link_mut().platform.run_for(clock / 50);
    let s2 = dbg.query_stats().expect("second qStats");

    // The guest never stopped, and time kept flowing between samples.
    assert!(!dbg.link_ref().platform.guest_stopped());
    assert!(s2.now > s1.now);
    assert!(s2.guest > s1.guest, "guest kept executing between samples");
    assert_eq!(s1.exits.len(), ExitCause::COUNT);
    // Cycle attribution in the sample is complete and self-consistent.
    assert_eq!(s1.guest + s1.monitor + s1.host + s1.idle, s1.now);
    assert_eq!(s2.guest + s2.monitor + s2.host + s2.idle, s2.now);
    // Exit counters only ever grow.
    for (c1, c2) in s1.exits.iter().zip(&s2.exits) {
        assert!(c2 >= c1);
    }
    // A streaming guest takes privileged and IRQ-virtualization exits.
    let count = |cause: ExitCause| s2.exits[cause.index()];
    assert!(count(ExitCause::Privileged) > 0);
    assert!(count(ExitCause::IrqInject) > 0);

    let platform = dbg.into_link().platform;
    let stats = GuestStats::read(platform.machine()).expect("guest stats");
    assert_eq!(stats.fault_cause, 0);
}

#[test]
fn malformed_qstats_packets_never_kill_the_stub() {
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 10);

    // Near-miss and garbage payloads go straight down the wire.
    for bad in ["qStat", "qStatsX", "q", "S1;g:zz", "qStats,extra"] {
        vmm.machine_mut().uart_input(&encode_packet(bad));
    }
    vmm.run_for(200_000);
    // Discard the stub's error replies to the garbage above.
    let _ = vmm.machine_mut().uart_output();

    // The stub answered every one with a parse error, not a panic, and the
    // guest kept streaming. A well-formed qStats still works afterwards.
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s = dbg
        .query_stats()
        .expect("stub alive after malformed traffic");
    assert!(s.now > 0);
    assert!(!dbg.link_ref().platform.guest_stopped());
}

#[test]
fn ring_overflow_is_counted_and_surfaced_in_the_export() {
    use lwvmm::obs::{Dev, Recorder, TraceRing};
    let mut rec = Recorder::new();
    rec.enable_tracing();
    rec.ring = TraceRing::new(2);
    for i in 0..10 {
        rec.irq(i, Dev::Nic, 5);
    }
    assert_eq!(rec.ring.len(), 2);
    assert_eq!(rec.ring.dropped(), 8);
    assert_eq!(rec.ring.total_offered(), 10);
    let mut t = ChromeTrace::new();
    t.add_platform(1, "tiny", &rec);
    let json = t.finish();
    assert!(json.contains("\"truncated\""));
    assert!(json.contains("\"events_dropped\":8"));
}

#[test]
fn stats_reply_wire_roundtrip() {
    // The exact payload the stub emits parses back to the same sample.
    let machine = streaming_machine(100, false);
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let clock = vmm.machine().config().clock_hz;
    vmm.run_for(clock / 20);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let s = dbg.query_stats().expect("qStats");
    let reply = Reply::Stats(s.clone());
    assert_eq!(Reply::parse(&reply.format()), Some(reply));
}
