//! Host-side self-observability end-to-end tests: the metrics registry and
//! host-time profiler are **simulation-invisible by construction** — wall
//! clock readings flow out of the simulation, never back in — so enabling
//! them (or the heartbeat that reads them) cannot change a single journal
//! byte on any platform.

use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, ReplayDriver};
use lwvmm::obs::{HostPhase, MetricsRegistry};

const KINDS: [&str; 3] = ["real-hw", "lvmm", "hosted"];

fn platform(kind: &str, metrics: bool) -> Box<dyn Platform> {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    if metrics {
        machine.obs.enable_hostprof();
    }
    match kind {
        "real-hw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        "hosted" => Box::new(lwvmm::hosted::HostedPlatform::new(machine, layout::ENTRY)),
        other => panic!("unknown platform {other}"),
    }
}

/// Records 10 simulated milliseconds of the streaming workload and returns
/// the sealed journal text plus the final guest RAM image. `slices > 1`
/// reproduces what `lwvmm-run --heartbeat` does: run in chunks, publishing
/// registry metrics after each one.
fn record(kind: &str, metrics: bool, slices: u64) -> (String, Vec<u8>) {
    let mut p = platform(kind, metrics);
    p.machine_mut().obs.enable_journal(kind);
    let per_ms = p.machine().config().clock_hz / 1_000;
    let total = 10 * per_ms;
    if slices > 1 {
        let reg = MetricsRegistry::new();
        let slice = (total / slices).max(1);
        let mut done = 0;
        while done < total {
            let chunk = slice.min(total - done);
            let ran = p.run_for(chunk);
            p.publish_metrics(&reg);
            done += ran;
            if ran < chunk {
                break; // stuck — mirrors the binary's heartbeat loop
            }
        }
    } else {
        p.run_for(total);
    }
    let mut j = p.machine().obs.journal().cloned().unwrap();
    j.seal(p.machine().now());
    (j.save(), p.machine().mem.as_bytes().to_vec())
}

/// The invariant the whole subsystem rests on: with the host profiler on
/// AND heartbeat-style sliced execution with periodic metric publication,
/// every platform produces byte-identical journals and RAM images to a
/// plain metrics-off run.
#[test]
fn metrics_and_heartbeat_are_simulation_invisible_on_all_platforms() {
    for kind in KINDS {
        let (journal_off, ram_off) = record(kind, false, 1);
        let (journal_on, ram_on) = record(kind, true, 1);
        assert_eq!(
            journal_off, journal_on,
            "{kind}: metrics changed journal bytes"
        );
        assert_eq!(ram_off, ram_on, "{kind}: metrics changed guest RAM");

        let (journal_hb, ram_hb) = record(kind, true, 7);
        assert_eq!(
            journal_off, journal_hb,
            "{kind}: heartbeat changed journal bytes"
        );
        assert_eq!(ram_off, ram_hb, "{kind}: heartbeat changed guest RAM");
    }
}

/// A journal recorded with metrics on replays cleanly on a metrics-off
/// platform (and vice versa): the recording carries no trace of the host
/// instrumentation.
#[test]
fn metrics_on_recording_replays_on_metrics_off_platform() {
    let mut rec = platform("lvmm", true);
    rec.machine_mut().obs.enable_journal("lvmm");
    let per_ms = rec.machine().config().clock_hz / 1_000;
    rec.run_for(10 * per_ms);
    let end = rec.machine().now();
    let mut journal = rec.machine().obs.journal().cloned().unwrap();
    journal.seal(end);

    let mut rep = platform("lvmm", false);
    let reached = ReplayDriver::new(&journal).run(rep.as_mut());
    assert_eq!(reached, end);
    assert_eq!(
        GuestStats::read(rep.machine()).unwrap(),
        GuestStats::read(rec.machine()).unwrap()
    );
    assert_eq!(rep.machine().mem.as_bytes(), rec.machine().mem.as_bytes());
}

/// The registry view of a run: `publish_metrics` exports instruction and
/// cycle totals, per-cause exit counters and — with the profiler on — the
/// host-time phases, all under the platform label, and the attribution
/// accounts for (nearly) the whole wall clock.
#[test]
fn published_registry_covers_counters_and_host_phases() {
    for kind in KINDS {
        let mut p = platform(kind, true);
        let per_ms = p.machine().config().clock_hz / 1_000;
        p.run_for(10 * per_ms);
        p.machine().obs.host_mark(HostPhase::GuestExec); // close deferred window
        let reg = MetricsRegistry::new();
        p.publish_metrics(&reg);
        let s = reg.snapshot();

        let name = |metric: &str| format!("{metric}{{platform=\"{kind}\"}}");
        assert!(s.counter(&name("lwvmm_instructions_total")) > 0, "{kind}");
        assert!(s.counter(&name("lwvmm_guest_cycles_total")) > 0, "{kind}");
        let wall = s.counter(&name("lwvmm_host_wall_ns_total"));
        assert!(wall > 0, "{kind}: wall clock published");
        assert!(s.counter(&name("lwvmm_host_marks_total")) > 0, "{kind}");
        let attributed: u64 = HostPhase::ALL
            .iter()
            .map(|ph| {
                s.counter(&format!(
                    "lwvmm_host_phase_ns_total{{platform=\"{kind}\",phase=\"{}\"}}",
                    ph.label()
                ))
            })
            .sum();
        assert!(attributed <= wall, "{kind}: attribution cannot exceed wall");
        assert!(
            attributed as f64 >= wall as f64 * 0.5,
            "{kind}: marks explain most of the wall clock \
             ({attributed} of {wall} ns)"
        );

        // The exposition renders every family deterministically.
        let text = s.prometheus();
        assert!(text.contains("# TYPE lwvmm_instructions_total counter"));
        assert!(text.contains(&format!(
            "lwvmm_host_phase_ns_total{{platform=\"{kind}\",phase=\"guest-exec\"}}"
        )));
    }
}

/// The wire protocol's fixed phase-vector width tracks the profiler's
/// phase enum — a drifting count would silently truncate attributions.
#[test]
fn wire_phase_width_matches_profiler_phase_count() {
    assert_eq!(lwvmm::debugger::METRICS_PHASES, HostPhase::COUNT);
    assert_eq!(HostPhase::ALL.len(), HostPhase::COUNT);
    // Canonical order is part of every surface's schema (JSON key order,
    // wire vector, prometheus series) — pin its head and tail.
    assert_eq!(HostPhase::ALL[0].label(), "guest-exec");
    assert_eq!(HostPhase::ALL[HostPhase::COUNT - 1].label(), "other");
}

/// Merging per-slice registry snapshots equals one whole-run snapshot —
/// the property that makes sharded or periodic publication safe.
#[test]
fn sliced_publication_merges_to_the_whole() {
    let mut p = platform("lvmm", true);
    let per_ms = p.machine().config().clock_hz / 1_000;

    let sliced = MetricsRegistry::new();
    for _ in 0..5 {
        p.run_for(2 * per_ms);
        p.publish_metrics(&sliced);
    }
    let whole = MetricsRegistry::new();
    p.publish_metrics(&whole);

    // Counters are published with `counter_set` (cumulative at the
    // source), so re-publication is idempotent: the final sliced state
    // equals the single whole-run publication. The wall clock keeps
    // ticking between the two publish calls, so it alone may differ.
    let wall = "lwvmm_host_wall_ns_total{platform=\"lvmm\"}";
    let mut sliced = sliced.snapshot().counters;
    let mut whole = whole.snapshot().counters;
    let (w_sliced, w_whole) = (sliced.remove(wall).unwrap(), whole.remove(wall).unwrap());
    assert!(
        w_sliced <= w_whole,
        "wall clock is monotonic across publishes"
    );
    assert_eq!(sliced, whole);
}
