//! End-to-end remote-debugging tests over the full stack: host `Debugger`
//! → wire protocol → simulated UART → monitor-resident stub → guest.

use lwvmm::debugger::{DbgError, Debugger, StopReason};
use lwvmm::guest::{apps, kernel::layout, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::{LvmmPlatform, UartLink};

type Dbg = Debugger<UartLink<LvmmPlatform>>;

fn counter_session() -> (Dbg, hx_asm::Program) {
    let program = apps::counter_guest();
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, program.base());
    (Debugger::new(UartLink::new(platform)), program)
}

#[test]
fn halt_inspect_resume() {
    let (mut dbg, program) = counter_session();
    dbg.link_mut().platform.run_for(50_000);
    let stop = dbg.halt().expect("halt");
    assert!(matches!(stop, StopReason::Halted { .. }));
    assert!(dbg.link_ref().platform.guest_stopped());

    let regs = dbg.read_registers().expect("regs");
    assert_eq!(regs.gprs[0], 0, "r0 reads zero");
    // s0 holds the counter address the guest loaded at boot.
    assert_eq!(regs.gpr(18), program.symbols.get("counter").unwrap());

    dbg.resume().expect("resume");
    assert!(!dbg.link_ref().platform.guest_stopped());
    // Guest keeps making progress.
    let counter = program.symbols.get("counter").unwrap();
    let before = dbg.link_ref().platform.machine().mem.word(counter);
    dbg.link_mut().platform.run_for(50_000);
    let after = dbg.link_ref().platform.machine().mem.word(counter);
    assert!(after > before);
}

#[test]
fn breakpoint_hits_exactly_at_symbol() {
    let (mut dbg, program) = counter_session();
    let bump = program.symbols.get("bump").unwrap();
    dbg.halt().unwrap();
    dbg.set_breakpoint(bump).unwrap();
    for _ in 0..3 {
        let stop = dbg.continue_until_stop().expect("hit");
        assert_eq!(stop, StopReason::Breakpoint { pc: bump });
    }
    // Memory reads mask the planted ebreak.
    let word = dbg.read_memory(bump, 4).unwrap();
    let instr = hx_cpu::Instr::decode(u32::from_le_bytes(word.try_into().unwrap())).unwrap();
    assert!(
        matches!(instr, hx_cpu::Instr::Load { .. }),
        "original instruction visible"
    );
    // Clearing restores the original word physically.
    dbg.clear_breakpoint(bump).unwrap();
    let raw = dbg.link_ref().platform.machine().mem.word(bump);
    assert!(matches!(
        hx_cpu::Instr::decode(raw),
        Ok(hx_cpu::Instr::Load { .. })
    ));
}

#[test]
fn single_step_walks_instructions() {
    let (mut dbg, program) = counter_session();
    let bump = program.symbols.get("bump").unwrap();
    dbg.halt().unwrap();
    dbg.set_breakpoint(bump).unwrap();
    dbg.continue_until_stop().unwrap();
    // Step through lw, addi, sw, ret — and land back in main_loop.
    let pcs: Vec<u32> = (0..4).map(|_| dbg.step().unwrap().pc()).collect();
    assert_eq!(pcs[0], bump + 4);
    assert_eq!(pcs[1], bump + 8);
    assert_eq!(pcs[2], bump + 12);
    // `ret` jumps back to the caller.
    let main_loop = program.symbols.get("main_loop").unwrap();
    assert_eq!(pcs[3], main_loop + 4);
}

#[test]
fn watchpoint_fires_on_guest_store() {
    let (mut dbg, program) = counter_session();
    let counter = program.symbols.get("counter").unwrap();
    dbg.halt().unwrap();
    dbg.set_watchpoint(counter, 4).unwrap();
    let stop = dbg.continue_until_stop().expect("watch");
    match stop {
        StopReason::Watchpoint { addr, pc } => {
            assert_eq!(addr, counter);
            // The faulting store is the `sw` in bump.
            assert_eq!(pc, program.symbols.get("bump").unwrap() + 8);
        }
        other => panic!("expected watchpoint, got {other:?}"),
    }
    dbg.clear_watchpoint(counter).unwrap();
    dbg.resume().unwrap();
    dbg.link_mut().platform.run_for(50_000);
    assert!(!dbg.link_ref().platform.guest_stopped());
}

#[test]
fn register_and_pc_writes() {
    let (mut dbg, _program) = counter_session();
    dbg.halt().unwrap();
    dbg.write_register(5, 0x1234_5678).unwrap();
    assert_eq!(dbg.read_registers().unwrap().gpr(5), 0x1234_5678);
    // Writing r0 is accepted and discarded.
    dbg.write_register(0, 0xffff_ffff).unwrap();
    assert_eq!(dbg.read_registers().unwrap().gpr(0), 0);
    // Bad register selector is a target error.
    assert_eq!(dbg.write_register(99, 1), Err(DbgError::Target(2)));
}

#[test]
fn memory_errors_are_reported() {
    let (mut dbg, _program) = counter_session();
    dbg.halt().unwrap();
    // Reads beyond guest RAM (into the monitor or off the end) fail.
    let monitor_base = dbg.link_ref().platform.monitor_base();
    assert_eq!(dbg.read_memory(monitor_base, 4), Err(DbgError::Target(3)));
    assert_eq!(dbg.read_memory(0xffff_f000, 4), Err(DbgError::Target(3)));
    assert_eq!(
        dbg.write_memory(monitor_base, &[0]),
        Err(DbgError::Target(3))
    );
}

#[test]
fn step_and_continue_require_stopped_guest() {
    let (mut dbg, _program) = counter_session();
    // Guest is running: flow-control commands are rejected, inspection
    // works live (the paper's monitoring-during-I/O requirement).
    assert!(dbg.read_registers().is_ok());
    assert!(matches!(
        dbg.resume(),
        Err(DbgError::Target(code)) if code == 4
    ));
}

#[test]
fn debugging_while_streaming_at_full_rate() {
    // The paper's core scenario: debug commands served while the guest
    // drives high-throughput I/O.
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, layout::ENTRY);
    let mut dbg = Debugger::new(UartLink {
        platform,
        slice: 5_000,
    });

    dbg.link_mut().platform.run_for(2_000_000);
    let frames0 = dbg.link_ref().platform.machine().nic.counters().tx_frames;
    assert!(frames0 > 0, "stream running");

    // Live inspection without stopping.
    let regs = dbg.read_registers().expect("live regs");
    assert_ne!(regs.pc, 0);
    let stats_mem = dbg.read_memory(layout::STATS, 32).expect("live stats read");
    let frames_guest = u32::from_le_bytes(stats_mem[8..12].try_into().unwrap());
    assert!(frames_guest > 0);

    // The stream continued throughout.
    dbg.link_mut().platform.run_for(2_000_000);
    let frames1 = dbg.link_ref().platform.machine().nic.counters().tx_frames;
    assert!(frames1 > frames0, "stream must keep flowing while debugged");
    assert!(!dbg.link_ref().platform.guest_stopped());
}

#[test]
fn break_in_halts_streaming_guest_and_reset_restarts_it() {
    let mut machine = Machine::new(MachineConfig::default());
    let program = Workload::new(100).build(&machine).unwrap();
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, layout::ENTRY);
    let mut dbg = Debugger::new(UartLink {
        platform,
        slice: 5_000,
    });

    dbg.link_mut().platform.run_for(2_000_000);
    let stop = dbg.halt().expect("break-in during streaming");
    assert!(matches!(stop, StopReason::Halted { .. }));
    let frames_at_halt = dbg.link_ref().platform.machine().nic.counters().tx_frames;

    // While stopped, the stream is frozen.
    dbg.link_mut().platform.run_for(1_000_000);
    let frames_later = dbg.link_ref().platform.machine().nic.counters().tx_frames;
    // In-flight frames may drain, but no new work is submitted.
    assert!(frames_later <= frames_at_halt + 130, "guest must be frozen");

    // Reset restarts the guest from its entry point.
    dbg.reset().expect("reset");
    let stop = dbg.query_stop().expect("stopped after reset");
    assert_eq!(stop.pc(), layout::ENTRY);
    dbg.resume().expect("resume after reset");
    dbg.link_mut().platform.run_for(4_000_000);
    let stats = lwvmm::guest::GuestStats::read(dbg.link_ref().platform.machine())
        .expect("guest re-booted after reset");
    assert!(stats.booted, "guest re-booted after reset");
    assert_eq!(stats.fault_cause, 0);
}

#[test]
fn stub_survives_protocol_garbage() {
    let (mut dbg, _program) = counter_session();
    // Inject garbage and malformed packets directly.
    dbg.link_mut()
        .platform
        .machine_mut()
        .uart_input(b"\xff\x00garbage$bad#zz$x#00");
    dbg.link_mut().platform.run_for(200_000);
    // The stub still answers properly afterwards.
    dbg.halt().expect("stub alive after garbage");
    assert!(dbg.read_registers().is_ok());
}
