//! The paper's stability claim, demonstrated: a guest OS with a wild-write
//! bug destroys its own memory. Under the **lightweight monitor** the debug
//! stub lives in protected monitor memory and keeps answering — the
//! developer can inspect the wreckage. With the conventional
//! **OS-embedded stub**, the debugger goes silent at exactly the moment it
//! is needed.
//!
//! Run with: `cargo run --release --example crash_resilience`

use lwvmm::debugger::{DbgError, Debugger};
use lwvmm::guest::{apps, embedded::EmbeddedStubPlatform};
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::{LvmmPlatform, UartLink};

fn machine_with_buggy_guest() -> (Machine, hx_asm::Program) {
    let program = apps::buggy_guest(1_000);
    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    (machine, program)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== scenario 1: stub inside the lightweight monitor ===\n");
    let (machine, program) = machine_with_buggy_guest();
    let mut vmm = LvmmPlatform::new(machine, program.base());

    // Let the bug fire: the guest wipes its first 64 KiB and crashes.
    vmm.run_for(20_000_000);
    println!(
        "guest memory at 0x2000 is now {:#010x} (was code/data)",
        vmm.machine().mem.word(0x2000)
    );
    println!(
        "monitor parked the runaway guest: stopped = {}",
        vmm.guest_stopped()
    );

    // The host connects *after* the crash — and the stub answers.
    let mut dbg = Debugger::new(UartLink::new(vmm));
    let stop = dbg.query_stop()?;
    println!("post-mortem stop reason: {stop}");
    let regs = dbg.read_registers()?;
    println!("crash pc = {:#010x}", regs.pc);
    let wreck = dbg.read_memory(0x2000, 8)?;
    println!("inspecting the wreckage at 0x2000: {wreck:02x?}");
    println!("=> the monitor-resident stub SURVIVES the guest crash\n");

    println!("=== scenario 2: stub embedded in the OS under development ===\n");
    let (machine, _program) = machine_with_buggy_guest();
    let mut embedded = EmbeddedStubPlatform::new(machine);
    embedded.run_for(20_000_000);
    println!("stub state intact after crash? {}", embedded.stub_alive());

    let mut dbg = Debugger::new(UartLink::new(embedded));
    match dbg.halt() {
        Err(DbgError::Timeout) => {
            println!("halt request: no reply — the embedded stub died with its OS");
        }
        other => println!("unexpected: {other:?}"),
    }
    println!("\n=> this is why the paper embeds the stub in a protected monitor:");
    println!("   debugging must keep working precisely when the OS misbehaves.");
    Ok(())
}
