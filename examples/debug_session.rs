//! A complete remote-debugging session against a guest running under the
//! lightweight monitor — the paper's Fig. 2.1 in action.
//!
//! The host-side `rdbg::Debugger` talks over the simulated UART to the
//! debug stub inside the monitor: halt, symbol-addressed breakpoints,
//! register and memory inspection, single-stepping, watchpoints.
//!
//! Run with: `cargo run --release --example debug_session`

use lwvmm::asm::disasm;
use lwvmm::debugger::{Debugger, StopReason};
use lwvmm::guest::apps;
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::{LvmmPlatform, UartLink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = apps::counter_guest();
    let bump = program.symbols.get("bump").expect("symbol");
    let counter = program.symbols.get("counter").expect("symbol");
    let message = program.symbols.get("message").expect("symbol");

    let mut machine = Machine::new(MachineConfig {
        ram_size: 8 << 20,
        ..Default::default()
    });
    machine.load_program(&program);
    let platform = LvmmPlatform::new(machine, program.base());
    let mut dbg = Debugger::new(UartLink::new(platform));

    // Let the guest run a bit, then break in.
    dbg.link_mut().platform.run_for(100_000);
    let stop = dbg.halt()?;
    println!("break-in: {stop}");

    // Plant a breakpoint on the `bump` subroutine by symbol.
    dbg.set_breakpoint(bump)?;
    let stop = dbg.continue_until_stop()?;
    println!("hit: {stop} (bump = {bump:#x})");
    assert_eq!(stop, StopReason::Breakpoint { pc: bump });

    // Inspect registers and disassemble around the stop.
    let regs = dbg.read_registers()?;
    println!(
        "pc={:#010x}  ra={:#010x}  s0={:#010x}",
        regs.pc,
        regs.gpr(1),
        regs.gpr(18)
    );
    let code = dbg.read_memory(bump, 16)?;
    for (i, w) in code.chunks(4).enumerate() {
        let word = u32::from_le_bytes(w.try_into().unwrap());
        let addr = bump + i as u32 * 4;
        println!("  {addr:#010x}: {}", disasm(word, addr));
    }

    // Read guest data: the counter value and the message string.
    let before = u32::from_le_bytes(dbg.read_memory(counter, 4)?.try_into().unwrap());
    let text = dbg.read_memory(message, 22)?;
    println!(
        "counter = {before}, message = {:?}",
        String::from_utf8_lossy(&text)
    );

    // Single-step through the load/add/store of the subroutine.
    for _ in 0..3 {
        let stop = dbg.step()?;
        println!("step -> {stop}");
    }
    let after = u32::from_le_bytes(dbg.read_memory(counter, 4)?.try_into().unwrap());
    assert_eq!(after, before + 1, "we just stepped over the increment");

    // Watchpoint on the counter: the next write stops the guest.
    dbg.clear_breakpoint(bump)?;
    dbg.set_watchpoint(counter, 4)?;
    let stop = dbg.continue_until_stop()?;
    println!("watchpoint: {stop}");
    assert!(matches!(stop, StopReason::Watchpoint { addr, .. } if addr == counter));
    dbg.clear_watchpoint(counter)?;

    // Patch guest memory from the host: reset the counter to zero.
    dbg.write_memory(counter, &0u32.to_le_bytes())?;
    let patched = u32::from_le_bytes(dbg.read_memory(counter, 4)?.try_into().unwrap());
    assert_eq!(patched, 0, "patch visible before resume");
    // (The store the watchpoint interrupted re-executes on resume, so the
    // counter continues from the guest's in-register value — exactly what
    // a real stopped-at-the-faulting-instruction debugger produces.)
    dbg.resume()?;
    dbg.link_mut().platform.run_for(200_000);
    let final_count = dbg.link_ref().platform.machine().mem.word(counter);
    println!("counter after patch + 200k cycles: {final_count}");
    assert!(final_count > after, "the guest kept counting after resume");

    println!(
        "\nsession complete — {} stub commands served",
        dbg.link_ref().platform.stub_stats().commands
    );
    Ok(())
}
