//! Quick start: boot the HiTactix-like streaming guest under the
//! lightweight virtual machine monitor and watch it stream.
//!
//! Run with: `cargo run --release --example quickstart`

use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::machine::{Machine, MachineConfig, Platform};
use lwvmm::monitor::LvmmPlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the default scaled configuration (150 MHz CPU,
    // gigabit NIC, three 40 MB/s disks).
    let mut machine = Machine::new(MachineConfig::default());
    let clock = machine.config().clock_hz;

    // Assemble the streaming kernel for a 200 Mbit/s target and load it.
    let workload = Workload::new(200);
    let program = workload.build(&machine)?;
    machine.load_program(&program);
    println!(
        "kernel: {} bytes at {:#x}",
        program.bytes().len(),
        program.base()
    );

    // Install the lightweight monitor: the guest kernel is deprivileged,
    // the interrupt controller and timer are virtualized, the disks and
    // NIC are passed straight through.
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);

    // Run half a simulated second, reporting every 100 ms.
    for tick in 1..=5 {
        vmm.run_for(clock / 10);
        let stats = GuestStats::read(vmm.machine()).expect("guest stats");
        let nic = vmm.machine().nic.counters();
        let t = vmm.time_stats();
        println!(
            "t={:>4} ms  frames={:>6}  wire={:>6.1} Mbps  cpu={:>5.1}%  (guest {:.1}%, monitor {:.1}%)",
            tick * 100,
            stats.frames,
            nic.tx_bytes as f64 * 8.0 / (vmm.machine().now() as f64 / clock as f64) / 1e6,
            t.cpu_load() * 100.0,
            t.guest as f64 / t.total() as f64 * 100.0,
            t.monitor as f64 / t.total() as f64 * 100.0,
        );
        assert_eq!(stats.fault_cause, 0, "guest must run clean");
    }

    let ms = vmm.monitor_stats();
    println!(
        "\nmonitor exits: {} privileged, {} emulated-MMIO, {} IRQ reflections, {} injections",
        ms.exits_privileged, ms.exits_mmio, ms.exits_irq_reflect, ms.irqs_injected
    );
    println!(
        "protection violations blocked: {}",
        ms.protection_violations
    );
    println!("\nThe same image boots on RawPlatform (real hardware) and");
    println!("HostedPlatform (conventional full monitor) — see streaming_server.rs.");
    Ok(())
}
