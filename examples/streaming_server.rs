//! The paper's evaluation workload on all three platforms, with end-to-end
//! data-integrity verification: a HiTactix-like streaming server reads from
//! three SCSI-like disks and sends the data over gigabit Ethernet as UDP,
//! while we measure CPU load — then every transmitted byte is checked
//! against the disk content.
//!
//! Run with: `cargo run --release --example streaming_server [rate_mbps]`

use lwvmm::guest::{kernel::layout, verify, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;

fn run(name: &str, mut platform: Box<dyn Platform>, clock: u64) -> f64 {
    // Capture frames for the integrity check (do this only at modest rates;
    // captures are memory-hungry).
    platform.machine_mut().nic.set_capture(true);
    platform.run_for(clock / 4); // 250 simulated ms

    let stats = GuestStats::read(platform.machine()).expect("guest stats");
    assert_eq!(
        stats.fault_cause, 0,
        "{name}: guest fault at {:#x}",
        stats.fault_pc
    );
    let nic = platform.machine().nic.counters();
    let load = platform.time_stats().cpu_load();
    let seconds = platform.machine().now() as f64 / clock as f64;
    let mbps = nic.tx_bytes as f64 * 8.0 / seconds / 1e6;

    // Verify every byte that crossed the wire against the disk pattern.
    let frames = platform.machine_mut().nic.take_captured();
    verify::verify_frames(&frames).expect("wire data must match disk content");

    println!(
        "{name:>9}: {mbps:>6.1} Mbps  cpu {:>5.1}%  ({} frames, {} verified byte-for-byte, {} underruns)",
        load * 100.0,
        nic.tx_frames,
        nic.tx_bytes,
        stats.underruns,
    );
    mbps
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    println!("streaming server at a requested {rate} Mbit/s on all three platforms\n");

    let workload = Workload::new(rate);
    let build = || -> Result<(Machine, u64), Box<dyn std::error::Error>> {
        let mut machine = Machine::new(MachineConfig::default());
        let program = workload.build(&machine)?;
        machine.load_program(&program);
        let clock = machine.config().clock_hz;
        Ok((machine, clock))
    };

    let (machine, clock) = build()?;
    let raw = run("real-hw", Box::new(RawPlatform::new(machine)), clock);

    let (machine, clock) = build()?;
    let lv = run(
        "lvmm",
        Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        clock,
    );

    let (machine, clock) = build()?;
    let ho = run(
        "hosted",
        Box::new(HostedPlatform::new(machine, layout::ENTRY)),
        clock,
    );

    println!("\nAt this rate the platforms deliver {raw:.0} / {lv:.0} / {ho:.0} Mbps.");
    println!("Sweep the rate (see `fig3_1`) to reproduce the paper's Fig. 3.1:");
    println!("the lightweight monitor saturates ~5x above the hosted monitor at");
    println!("roughly a quarter of real hardware.");
    Ok(())
}
